//! Storage-tier caches must be invisible to correctness: with the server
//! block cache and client read leases enabled, every read returns exactly
//! the bytes the cache-off run returns — across seeds, fault plans (link
//! flaps, connection resets, a server crash), cross-client overwrites, and
//! a federation shard failover mid-read. Only the virtual clock is allowed
//! to differ.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use semplar::{AdioFile, AdioFs, FedFs, FedShard, SrbFs};
use semplar_repro::clusters::{das2, Testbed};
use semplar_repro::faults::FaultPlan;
use semplar_repro::netsim::{Bw, Network};
use semplar_repro::runtime::{simulate, spawn, Dur};
use semplar_repro::semplar;
use semplar_repro::semplar::{File, OpenFlags, Payload};
use semplar_repro::srb::{
    adler32, CacheSpec, ConnRoute, Eviction, Replicator, RetryPolicy, SrbServer, SrbServerCfg,
};

/// The deterministic byte at `offset + k` of object `file`, version `v`.
fn pattern(file: usize, v: usize, offset: u64, len: u64) -> Vec<u8> {
    (0..len)
        .map(|k| (((offset + k) as usize).wrapping_mul(131) + file * 29 + v * 71 + 17) as u8)
        .collect()
}

const RANK_BYTES: u64 = 600_000;
const SHARED_BYTES: u64 = 256 << 10;

/// Everything content-observable about one chaos run. Virtual times are
/// deliberately absent: caches change *when* things happen, never *what*.
#[derive(Debug, PartialEq)]
struct Observed {
    /// adler32 of every read the run performs, in program order.
    reads: Vec<u32>,
    /// Final server-side checksums of every object.
    finals: Vec<u32>,
}

/// Two ranks write and read back their own objects while a seeded plan
/// flaps the WAN, resets every connection, and crashes the server; then
/// the main thread exercises cross-client coherence on a shared object:
/// fs0 leases a read, fs1 overwrites, fs0 must re-read the new bytes.
fn chaos_run(seed: u64, caches: bool) -> (Observed, u64, u64) {
    simulate(move |rt| {
        let tb = Testbed::new(rt.clone(), das2(), 2);
        if caches {
            tb.server.set_block_cache(CacheSpec {
                block: 64 << 10,
                capacity: 4 << 20,
                eviction: Eviction::Lru,
            });
        }
        let fs: Vec<Arc<SrbFs>> = (0..2).map(|n| tb.srbfs(n)).collect();
        if caches {
            for f in &fs {
                f.enable_read_leases(8 << 20);
            }
        }
        let (wan_up, _) = tb.wan_links();
        let plan = FaultPlan::new(seed)
            .link_flap(wan_up, Dur::from_millis(100), Dur::from_millis(200), 2)
            .conn_reset_at(Dur::from_millis(400))
            .server_crash_at(Dur::from_millis(900), Dur::from_millis(300));
        let inj = plan.inject(&rt, &tb.net, &tb.server);

        let rank_reads: Arc<Mutex<Vec<(usize, u32)>>> = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..2usize)
            .map(|rank| {
                let tb = tb.clone();
                let fs = fs[rank].clone();
                let rank_reads = rank_reads.clone();
                spawn(&rt, &format!("rank{rank}"), move || {
                    let path = format!("/d{rank}");
                    let f = File::open(&tb.rt, &fs, &path, OpenFlags::CreateRw).expect("open");
                    f.write_at(0, &Payload::bytes(pattern(rank, 1, 0, RANK_BYTES)))
                        .expect("write");
                    // Read back twice: the second pass re-reads bytes a
                    // lease may now hold — both must equal what we wrote.
                    for _ in 0..2 {
                        let got = f.read_at(0, RANK_BYTES).expect("read");
                        let bytes = got.data().expect("real bytes");
                        assert_eq!(bytes, &pattern(rank, 1, 0, RANK_BYTES)[..]);
                        rank_reads.lock().unwrap().push((rank, adler32(bytes)));
                    }
                    f.close().expect("close");
                })
            })
            .collect();
        for h in handles {
            h.join_unwrap();
        }
        while !inj.done() {
            rt.sleep(Dur::from_millis(50));
        }

        // Cross-client coherence, sequenced on the main thread so the
        // expected bytes are unambiguous: fs0 reads (and may lease) the
        // shared object, fs1 overwrites a middle range, fs0 re-reads.
        let mut reads = Vec::new();
        let a = File::open(&tb.rt, &fs[0], "/shared", OpenFlags::CreateRw).expect("open a");
        let b = File::open(&tb.rt, &fs[1], "/shared", OpenFlags::CreateRw).expect("open b");
        a.write_at(0, &Payload::bytes(pattern(9, 1, 0, SHARED_BYTES)))
            .expect("seed shared");
        for _ in 0..2 {
            let got = a.read_at(0, SHARED_BYTES).expect("read shared");
            reads.push(adler32(got.data().expect("real bytes")));
        }
        // A second client reading the same object goes to the server (its
        // own lease is cold) and is served from the block cache the first
        // client's read just installed.
        let got = b.read_at(0, SHARED_BYTES).expect("cross-client read");
        assert_eq!(
            got.data().expect("real bytes"),
            &pattern(9, 1, 0, SHARED_BYTES)[..]
        );
        reads.push(adler32(got.data().unwrap()));
        let (lo, len) = (SHARED_BYTES / 4, SHARED_BYTES / 2);
        b.write_at(lo, &Payload::bytes(pattern(9, 2, lo, len)))
            .expect("overwrite shared");
        let mut want = pattern(9, 1, 0, SHARED_BYTES);
        want[lo as usize..(lo + len) as usize].copy_from_slice(&pattern(9, 2, lo, len));
        let got = a.read_at(0, SHARED_BYTES).expect("re-read shared");
        assert_eq!(
            got.data().expect("real bytes"),
            &want[..],
            "stale read after an overlapping cross-client write"
        );
        reads.push(adler32(got.data().unwrap()));
        a.close().expect("close a");
        b.close().expect("close b");

        let mut rr = rank_reads.lock().unwrap().clone();
        rr.sort_by_key(|(rank, _)| *rank);
        let mut all: Vec<u32> = rr.into_iter().map(|(_, s)| s).collect();
        all.append(&mut reads);

        let conn = tb.server.connect(tb.route(0), "semplar", "hpdc06").unwrap();
        let finals = vec![
            conn.checksum("/d0").unwrap(),
            conn.checksum("/d1").unwrap(),
            conn.checksum("/shared").unwrap(),
        ];
        conn.disconnect().unwrap();

        let lease_hits = fs.iter().map(|f| f.lease_stats().hits).sum();
        (
            Observed { reads: all, finals },
            lease_hits,
            tb.server.cache_stats().hits,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Cache-on ≡ cache-off: same reads, same final server checksums, for
    /// any seed — and the cache-on run really did serve from its caches.
    #[test]
    fn caches_are_transparent_under_faults(seed in any::<u64>()) {
        let (off, _, _) = chaos_run(seed, false);
        let (on, lease_hits, cache_hits) = chaos_run(seed, true);
        prop_assert_eq!(&off, &on, "seed {} diverged with caches on", seed);
        prop_assert!(lease_hits > 0, "lease cache never hit");
        prop_assert!(cache_hits > 0, "block cache never hit");
        // And both match the bytes the workload actually wrote.
        for (rank, got) in off.finals[..2].iter().enumerate() {
            prop_assert_eq!(*got, adler32(&pattern(rank, 1, 0, RANK_BYTES)));
        }
    }
}

const FILES: usize = 2;
const BYTES_PER_FILE: u64 = 2 << 20;
const CHUNK: u64 = 256 << 10;

/// Write FILES files through a 2-shard federation with caches on or off; a
/// seeded crash fails the first file's shard over mid-run while a leased
/// re-read of chunk 0 is interleaved with every write. After
/// reconciliation chunk 0 is overwritten and re-read: the lease must not
/// serve pre-failover bytes.
fn federation_run(seed: u64, caches: bool) -> (Vec<u32>, Vec<u32>, u64, u64) {
    simulate(move |rt| {
        let net = Network::new(rt.clone());
        let mut shards = Vec::new();
        let mut primaries = Vec::new();
        for s in 0..2usize {
            let route = |name: String, bw: f64, lat: u64| ConnRoute {
                fwd: vec![net.add_link(&format!("{name}-f"), Bw::mbps(bw), Dur::from_millis(lat))],
                rev: vec![net.add_link(&format!("{name}-r"), Bw::mbps(bw), Dur::from_millis(lat))],
                send_cap: None,
                recv_cap: None,
                bus: None,
            };
            let primary = SrbServer::new(net.clone(), SrbServerCfg::default());
            let replica = SrbServer::new(net.clone(), SrbServerCfg::default());
            if caches {
                let spec = CacheSpec {
                    block: 64 << 10,
                    capacity: 4 << 20,
                    eviction: Eviction::Lru,
                };
                primary.set_block_cache(spec);
                replica.set_block_cache(spec);
            }
            primary.mcat().add_user("u", "p");
            replica.mcat().add_user("u", "p");
            replica.mcat().add_user("fed", "fed");
            let cfg = |r: ConnRoute| semplar::SrbFsConfig {
                route: r,
                user: "u".into(),
                password: "p".into(),
            };
            let primary_fs = SrbFs::with_retry(
                primary.clone(),
                cfg(route(format!("s{s}p"), 50.0, 10)),
                RetryPolicy::none(),
            );
            let replica_fs = SrbFs::with_retry(
                replica.clone(),
                cfg(route(format!("s{s}r"), 50.0, 10)),
                RetryPolicy::none(),
            );
            if caches {
                primary_fs.enable_read_leases(8 << 20);
                replica_fs.enable_read_leases(8 << 20);
            }
            let repl = Replicator::start(
                &rt,
                primary.clone(),
                replica,
                route(format!("s{s}x"), 1000.0, 1),
                "fed",
                "fed",
                RetryPolicy::default(),
            );
            primaries.push(primary);
            shards.push(FedShard {
                primary: primary_fs,
                replica: replica_fs,
                replicator: Some(repl),
                reverse: None,
            });
        }
        let fed = FedFs::new(&rt, shards);
        fed.mk_coll_all("/fed").expect("mk /fed");
        let paths: Vec<String> = (0..FILES).map(|i| format!("/fed/data{i}")).collect();
        let inj = FaultPlan::new(seed)
            .server_crash_at(Dur::from_millis(300), Dur::from_millis(500))
            .inject(&rt, &net, &primaries[fed.shard_of(&paths[0])]);

        let mut handles: Vec<Box<dyn AdioFile>> = paths
            .iter()
            .map(|p| fed.open(p, OpenFlags::CreateRw).expect("open"))
            .collect();
        let mut failover_read = false;
        for c in 0..BYTES_PER_FILE / CHUNK {
            for (i, h) in handles.iter_mut().enumerate() {
                let data = Payload::bytes(pattern(i, 1, c * CHUNK, CHUNK));
                assert_eq!(h.write_at(c * CHUNK, &data).expect("write"), CHUNK);
            }
            if c > 0 {
                // Leased re-read of chunk 0 interleaved with the writes —
                // with the crash landing mid-loop, at least one of these is
                // a read across the shard failover.
                let got = handles[0].read_at(0, CHUNK).expect("chunk-0 read");
                assert_eq!(
                    got.data().expect("real bytes"),
                    &pattern(0, 1, 0, CHUNK)[..],
                    "acked bytes lost across failover"
                );
                failover_read |= fed.failovers() > 0;
            }
        }
        assert!(inj.stats().injected() >= 1, "crash never landed");
        assert!(failover_read, "no read ever crossed the failover");
        while !inj.done() {
            rt.sleep(Dur::from_millis(100));
        }
        while !fed.reconcile() {
            rt.sleep(Dur::from_millis(50));
        }

        // Post-reconcile overwrite of the chunk the lease is warmest on:
        // the re-read must see the new bytes, not the pre-failover lease.
        handles[0]
            .write_at(0, &Payload::bytes(pattern(0, 2, 0, CHUNK)))
            .expect("overwrite");
        let got = handles[0].read_at(0, CHUNK).expect("re-read");
        assert_eq!(
            got.data().expect("real bytes"),
            &pattern(0, 2, 0, CHUNK)[..],
            "stale lease read after an acked overlapping write"
        );
        for mut h in handles {
            h.close().expect("close");
        }
        for shard in fed.shards() {
            if let Some(repl) = &shard.replicator {
                repl.quiesce();
            }
        }

        let sums = |pick: fn(&FedShard) -> &Arc<SrbFs>| -> Vec<u32> {
            paths
                .iter()
                .map(|p| {
                    let conn = pick(&fed.shards()[fed.shard_of(p)])
                        .admin_conn()
                        .expect("admin conn");
                    let sum = conn.checksum(p).expect("checksum");
                    let _ = conn.disconnect();
                    sum
                })
                .collect()
        };
        let lease_hits = fed
            .shards()
            .iter()
            .map(|s| s.primary.lease_stats().hits + s.replica.lease_stats().hits)
            .sum();
        (
            sums(|s| &s.primary),
            sums(|s| &s.replica),
            fed.failovers(),
            lease_hits,
        )
    })
}

/// The checksums every federation run must converge to: file 0 carries the
/// post-reconcile overwrite of chunk 0, file 1 is untouched v1 bytes.
fn fed_expected() -> Vec<u32> {
    (0..FILES)
        .map(|i| {
            let mut want = pattern(i, 1, 0, BYTES_PER_FILE);
            if i == 0 {
                want[..CHUNK as usize].copy_from_slice(&pattern(0, 2, 0, CHUNK));
            }
            adler32(&want)
        })
        .collect()
}

/// A shard failover mid-read is invisible to cached clients: cache-on and
/// cache-off converge to the same primary and replica checksums, which are
/// the checksums of the bytes actually written.
#[test]
fn caches_are_transparent_across_shard_failover() {
    let expected = fed_expected();
    let (p_off, r_off, fo_off, _) = federation_run(7, false);
    let (p_on, r_on, fo_on, lease_hits) = federation_run(7, true);
    assert_eq!(p_off, expected, "cache-off primaries lost bytes");
    assert_eq!(r_off, expected, "cache-off replicas diverged");
    assert_eq!(p_on, expected, "cache-on primaries lost bytes");
    assert_eq!(r_on, expected, "cache-on replicas diverged");
    assert!(fo_off > 0 && fo_on > 0, "crash never forced a failover");
    assert!(lease_hits > 0, "lease cache never hit across the failover");
}
