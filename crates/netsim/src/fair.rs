//! Max-min fair rate allocation by progressive filling.
//!
//! Given a set of links with finite capacities and a set of flows, each
//! crossing a subset of the links and optionally carrying its own rate cap
//! (e.g. a TCP window limit `cwnd/RTT`), compute the max-min fair rate for
//! every flow: repeatedly find the most constrained resource (a bottleneck
//! link's equal share, or a flow's own cap), freeze the flows it binds, and
//! subtract their rates from the residual capacities.
//!
//! This is the standard fluid model for steady-state TCP bandwidth sharing
//! and is the mechanism behind all of the paper's §7.2 results: a single WAN
//! stream is window-limited far below the uplink capacity, so a second
//! stream from the same node nearly doubles throughput until a shared link
//! (the transoceanic path, the OSC NAT host, or the SRB server NICs)
//! saturates.

/// One flow: the link indices it traverses plus an optional per-flow cap in
/// capacity units per second.
#[derive(Clone, Debug)]
pub struct FlowSpec<'a> {
    /// Indices into the link capacity array. May be empty for a purely
    /// cap-limited flow (e.g. the CPU model's single implicit resource).
    pub path: &'a [usize],
    /// Per-flow rate ceiling (`None` = unlimited).
    pub cap: Option<f64>,
}

/// Rate assigned to a flow with an empty path and no cap. Effectively
/// "infinitely fast" while staying comfortably inside `f64`.
pub const UNCONSTRAINED_RATE: f64 = 1e30;

/// Compute max-min fair rates.
///
/// `link_caps[l]` is link `l`'s capacity. Returns one rate per flow, in the
/// same units. Zero-capacity links yield zero rates for their flows.
pub fn max_min_rates(link_caps: &[f64], flows: &[FlowSpec<'_>]) -> Vec<f64> {
    let nf = flows.len();
    let nl = link_caps.len();
    let mut rates = vec![0.0f64; nf];
    if nf == 0 {
        return rates;
    }
    let mut fixed = vec![false; nf];
    let mut residual: Vec<f64> = link_caps.to_vec();
    let mut count = vec![0usize; nl];
    for f in flows {
        for &l in f.path {
            count[l] += 1;
        }
    }
    let mut remaining = nf;
    while remaining > 0 {
        // The tightest link share among links still carrying unfixed flows.
        let mut best_share = f64::INFINITY;
        let mut best_link = usize::MAX;
        for l in 0..nl {
            if count[l] > 0 {
                let share = (residual[l]).max(0.0) / count[l] as f64;
                if share < best_share {
                    best_share = share;
                    best_link = l;
                }
            }
        }
        // Any unfixed flow whose own cap binds before the link share is
        // frozen at its cap first.
        let mut froze_capped = false;
        for (i, f) in flows.iter().enumerate() {
            if fixed[i] {
                continue;
            }
            let effective_cap = match f.cap {
                Some(c) => c,
                None if f.path.is_empty() => UNCONSTRAINED_RATE,
                None => continue,
            };
            if effective_cap <= best_share {
                rates[i] = effective_cap;
                fixed[i] = true;
                remaining -= 1;
                for &l in f.path {
                    residual[l] -= effective_cap;
                    count[l] -= 1;
                }
                froze_capped = true;
            }
        }
        if froze_capped {
            continue;
        }
        if best_link == usize::MAX {
            // Remaining flows have no finite constraint at all.
            for (i, f) in flows.iter().enumerate() {
                if !fixed[i] {
                    rates[i] = f.cap.unwrap_or(UNCONSTRAINED_RATE);
                    fixed[i] = true;
                }
            }
            break;
        }
        // Freeze every unfixed flow on the bottleneck link at the fair share.
        for (i, f) in flows.iter().enumerate() {
            if fixed[i] || !f.path.contains(&best_link) {
                continue;
            }
            rates[i] = best_share;
            fixed[i] = true;
            remaining -= 1;
            for &l in f.path {
                residual[l] -= best_share;
                count[l] -= 1;
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates(caps: &[f64], flows: &[(&[usize], Option<f64>)]) -> Vec<f64> {
        let specs: Vec<FlowSpec> = flows
            .iter()
            .map(|&(path, cap)| FlowSpec { path, cap })
            .collect();
        max_min_rates(caps, &specs)
    }

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() <= 1e-6 * b.abs().max(1.0), "{a} != {b}");
    }

    #[test]
    fn single_flow_gets_full_link() {
        let r = rates(&[100.0], &[(&[0], None)]);
        assert_close(r[0], 100.0);
    }

    #[test]
    fn equal_split_on_shared_link() {
        let r = rates(&[90.0], &[(&[0], None), (&[0], None), (&[0], None)]);
        for &x in &r {
            assert_close(x, 30.0);
        }
    }

    #[test]
    fn per_flow_cap_binds_before_link_share() {
        let r = rates(&[100.0], &[(&[0], Some(10.0)), (&[0], None)]);
        assert_close(r[0], 10.0);
        assert_close(r[1], 90.0); // the uncapped flow takes the slack
    }

    #[test]
    fn window_capped_streams_double_with_two_connections() {
        // The §7.2 mechanism in miniature: link 100, per-stream cap 11.
        let one = rates(&[100.0], &[(&[0], Some(11.0))]);
        let two = rates(&[100.0], &[(&[0], Some(11.0)), (&[0], Some(11.0))]);
        assert_close(one.iter().sum::<f64>(), 11.0);
        assert_close(two.iter().sum::<f64>(), 22.0);
    }

    #[test]
    fn shared_bottleneck_limits_aggregate() {
        // 10 capped streams through a NAT-like 50-unit link.
        let flows: Vec<(&[usize], Option<f64>)> = (0..10).map(|_| (&[0][..], Some(11.0))).collect();
        let r = rates(&[50.0], &flows);
        assert_close(r.iter().sum::<f64>(), 50.0);
        for &x in &r {
            assert_close(x, 5.0);
        }
    }

    #[test]
    fn multi_link_path_bound_by_tightest() {
        // Flow A crosses both links; flow B only the fat one.
        let r = rates(&[10.0, 100.0], &[(&[0, 1], None), (&[1], None)]);
        assert_close(r[0], 10.0);
        assert_close(r[1], 90.0);
    }

    #[test]
    fn classic_max_min_example() {
        // Three links of cap 10, 20, 30; flow 0 on all, flow 1 on {0},
        // flow 2 on {1}, flow 3 on {2}.
        let r = rates(
            &[10.0, 20.0, 30.0],
            &[
                (&[0, 1, 2], None),
                (&[0], None),
                (&[1], None),
                (&[2], None),
            ],
        );
        assert_close(r[0], 5.0); // bottleneck link 0 splits 10 two ways
        assert_close(r[1], 5.0);
        assert_close(r[2], 15.0);
        assert_close(r[3], 25.0);
    }

    #[test]
    fn zero_capacity_link_starves_flows() {
        let r = rates(&[0.0, 100.0], &[(&[0, 1], None), (&[1], None)]);
        assert_close(r[0], 0.0);
        assert_close(r[1], 100.0);
    }

    #[test]
    fn empty_path_uncapped_is_unconstrained() {
        let r = rates(&[], &[(&[], None)]);
        assert_eq!(r[0], UNCONSTRAINED_RATE);
    }

    #[test]
    fn empty_path_with_cap_runs_at_cap() {
        let r = rates(&[], &[(&[], Some(3.5))]);
        assert_close(r[0], 3.5);
    }

    #[test]
    fn no_flows_is_empty() {
        assert!(rates(&[10.0], &[]).is_empty());
    }

    #[test]
    fn cpu_model_timeshares_cores() {
        // 2 "cores", 3 tasks each capped at 1 core: fair share 2/3 each.
        let flows: Vec<(&[usize], Option<f64>)> = (0..3).map(|_| (&[0][..], Some(1.0))).collect();
        let r = rates(&[2.0], &flows);
        for &x in &r {
            assert_close(x, 2.0 / 3.0);
        }
        // 2 tasks on 2 cores: each runs at full speed.
        let flows2: Vec<(&[usize], Option<f64>)> = (0..2).map(|_| (&[0][..], Some(1.0))).collect();
        let r2 = rates(&[2.0], &flows2);
        for &x in &r2 {
            assert_close(x, 1.0);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// No link is ever oversubscribed, and rates are non-negative
            /// and respect per-flow caps.
            #[test]
            fn allocation_is_feasible(
                caps in proptest::collection::vec(0.1f64..1000.0, 1..6),
                flow_seeds in proptest::collection::vec(
                    (proptest::collection::vec(0usize..6, 0..4), proptest::option::of(0.01f64..500.0)),
                    1..12
                ),
            ) {
                let nl = caps.len();
                let paths: Vec<Vec<usize>> = flow_seeds
                    .iter()
                    .map(|(p, _)| {
                        let mut v: Vec<usize> = p.iter().map(|x| x % nl).collect();
                        v.sort_unstable();
                        v.dedup();
                        v
                    })
                    .collect();
                let specs: Vec<FlowSpec> = paths
                    .iter()
                    .zip(flow_seeds.iter())
                    .map(|(p, (_, cap))| FlowSpec { path: p, cap: *cap })
                    .collect();
                let r = max_min_rates(&caps, &specs);
                for (i, spec) in specs.iter().enumerate() {
                    prop_assert!(r[i] >= -1e-9);
                    if let Some(c) = spec.cap {
                        prop_assert!(r[i] <= c * (1.0 + 1e-9));
                    }
                }
                for (l, &cap) in caps.iter().enumerate() {
                    let load: f64 = specs
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.path.contains(&l))
                        .map(|(i, _)| r[i])
                        .sum();
                    prop_assert!(load <= cap * (1.0 + 1e-6) + 1e-6,
                        "link {l} oversubscribed: {load} > {cap}");
                }
            }

            /// Work conservation: every flow is stopped by *something* — its
            /// own cap or a saturated link on its path.
            #[test]
            fn allocation_is_work_conserving(
                caps in proptest::collection::vec(1.0f64..1000.0, 1..5),
                nflows in 1usize..10,
            ) {
                // All flows cross all links, no caps: everyone gets an equal
                // share of the tightest link.
                let nl = caps.len();
                let path: Vec<usize> = (0..nl).collect();
                let specs: Vec<FlowSpec> = (0..nflows).map(|_| FlowSpec { path: &path, cap: None }).collect();
                let r = max_min_rates(&caps, &specs);
                let tightest = caps.iter().cloned().fold(f64::INFINITY, f64::min);
                let want = tightest / nflows as f64;
                for &x in &r {
                    prop_assert!((x - want).abs() < 1e-6 * want.max(1.0));
                }
            }
        }
    }
}
