//! # semplar-netsim
//!
//! Flow-level simulation of the wide-area and cluster networks used in the
//! SEMPLAR evaluation (Ali & Lauria, HPDC 2006).
//!
//! The paper's §7 phenomena are all *bandwidth-sharing and latency* effects:
//!
//! * a single WAN TCP stream is window-limited (`cwnd/RTT`) far below the
//!   node uplink, so a second stream per node nearly doubles throughput
//!   (Fig. 8);
//! * shared resources — the transoceanic path, the OSC NAT host, the SRB
//!   server NICs, a node's I/O bus — cap the aggregate and erase per-stream
//!   gains (§7.2, §7.1's counter-intuitive contention result);
//! * synchronous request/response ops pay a full RTT per call.
//!
//! A max-min-fair fluid model over a link graph captures exactly these
//! mechanisms. Flows start and stop as actors call
//! [`Network::transfer`]/[`Network::send_message`]; rates are recomputed by
//! progressive filling at every change; each blocked owner re-arms its
//! completion timer against its new rate. The same allocator doubles as the
//! node CPU model ([`Cpu`]).

#![warn(missing_docs)]

pub mod cpu;
pub mod fair;
pub mod net;

pub use cpu::Cpu;
pub use fair::{max_min_rates, FlowSpec};
pub use net::{AllocMode, Bw, LinkId, NetStats, Network};
