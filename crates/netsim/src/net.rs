//! The shared-network object: links, flows, and blocking transfers.
//!
//! A [`Network`] is a set of links plus the currently active flows. An actor
//! moves data by calling [`Network::transfer`] (or the latency-inclusive
//! [`Network::send_message`]): the engine inserts a flow, recomputes the
//! max-min fair allocation, and the calling actor sleeps until its flow
//! drains. Whenever any flow starts or finishes, every affected flow's
//! progress is settled at the current instant and its owner re-arms its
//! completion timer against the new rate — a standard fluid ("piecewise
//! constant rate") model.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use semplar_runtime::{Dur, Event, Runtime, Time};

use crate::fair::{max_min_rates, FlowSpec};

/// A bandwidth, stored in bits per second.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
pub struct Bw(pub f64);

impl Bw {
    /// Bits per second.
    pub const fn bps(b: f64) -> Bw {
        Bw(b)
    }
    /// Megabits per second (10^6 bits/s, the paper's unit in Figs. 8-9).
    pub const fn mbps(m: f64) -> Bw {
        Bw(m * 1e6)
    }
    /// Gigabits per second.
    pub const fn gbps(g: f64) -> Bw {
        Bw(g * 1e9)
    }
    /// Megabytes per second.
    pub const fn mbyte_per_s(m: f64) -> Bw {
        Bw(m * 8e6)
    }
    /// The value in bits per second.
    pub fn as_bps(self) -> f64 {
        self.0
    }
    /// The value in megabits per second.
    pub fn as_mbps(self) -> f64 {
        self.0 / 1e6
    }
}

/// Identifier of a link within one [`Network`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LinkId(pub(crate) usize);

/// Identifier of an I/O bus within one [`Network`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BusId(pub(crate) usize);

/// Which device a flow's DMA traffic belongs to on its node's I/O bus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceClass {
    /// The cluster interconnect NIC (Myrinet / GigE MPI fabric).
    Interconnect,
    /// The wide-area Ethernet NIC (SEMPLAR's TCP streams).
    Wan,
}

/// The I/O-bus contention model (paper §7.1).
///
/// The paper found that overlapping MPI communication with two-stream remote
/// I/O forfeited the second stream's benefit: "the reason for this
/// unexpected result is the I/O bus contention between the interconnect and
/// Ethernet network cards". Max-min fair sharing cannot produce this (a fair
/// allocator never hurts a small flow), because PCI arbitration is not fair:
/// interrupt and DMA contention disproportionately degrades the NICs.
///
/// This is modelled phenomenologically: when at least one *interconnect*
/// flow and at least `min_wan_streams` *WAN* flows are simultaneously active
/// on the same bus, every WAN flow on the bus becomes **contended** —
/// stickily, for its whole remaining lifetime (TCP that backs off under
/// interrupt starvation does not instantly recover) — and runs at
/// `penalty × rate`. A single window-limited WAN stream fits within the
/// bus's DMA slack (`min_wan_streams = 2` by default), which is why plain
/// computation/I-O overlap (§7.1) is unaffected while the combined
/// overlap+double-connection experiment collapses to single-stream speed.
#[derive(Clone, Copy, Debug)]
pub struct BusSpec {
    /// Rate multiplier applied to contended WAN flows (0 < penalty ≤ 1).
    pub penalty: f64,
    /// Number of concurrent WAN flows needed (with interconnect traffic) to
    /// trigger contention.
    pub min_wan_streams: usize,
}

impl Default for BusSpec {
    fn default() -> Self {
        BusSpec {
            penalty: 0.5,
            min_wan_streams: 2,
        }
    }
}

/// Options for [`Network::transfer_opts`].
#[derive(Clone, Debug, Default)]
pub struct XferOpts {
    /// Per-flow rate cap (TCP window limit).
    pub cap: Option<Bw>,
    /// I/O buses this flow's DMA crosses, with its device class on each.
    pub buses: Vec<(BusId, DeviceClass)>,
}

struct LinkState {
    name: String,
    cap: f64, // bits/s
    latency: Dur,
    bits_moved: f64,
}

struct FlowState {
    path: Vec<usize>,
    cap: Option<f64>,
    rate: f64,
    bits_rem: f64,
    last_settle: Time,
    ev: Event,
    buses: Vec<(usize, DeviceClass)>,
    /// Sticky contention flag (see [`BusSpec`]).
    contended: bool,
}

struct BusState {
    spec: BusSpec,
}

struct NetInner {
    links: Vec<LinkState>,
    buses: Vec<BusState>,
    flows: HashMap<u64, FlowState>,
    next_flow: u64,
    completed_flows: u64,
}

/// A simulated network shared by all actors of an experiment.
pub struct Network {
    rt: Arc<dyn Runtime>,
    inner: Mutex<NetInner>,
}

/// Threshold below which a flow counts as drained (half a bit).
const DONE_BITS: f64 = 0.5;
/// Rates below this are treated as stalled; the owner waits for a recompute.
const MIN_RATE: f64 = 1e-9;

impl Network {
    /// An empty network using `rt` for time and blocking.
    pub fn new(rt: Arc<dyn Runtime>) -> Arc<Network> {
        Arc::new(Network {
            rt,
            inner: Mutex::new(NetInner {
                links: Vec::new(),
                buses: Vec::new(),
                flows: HashMap::new(),
                next_flow: 0,
                completed_flows: 0,
            }),
        })
    }

    /// The runtime this network charges time against.
    pub fn runtime(&self) -> &Arc<dyn Runtime> {
        &self.rt
    }

    /// Add a link with the given capacity and one-way latency contribution.
    pub fn add_link(&self, name: &str, cap: Bw, latency: Dur) -> LinkId {
        let mut g = self.inner.lock();
        g.links.push(LinkState {
            name: name.to_string(),
            cap: cap.as_bps(),
            latency,
            bits_moved: 0.0,
        });
        LinkId(g.links.len() - 1)
    }

    /// Register an I/O bus with the given contention behaviour.
    pub fn add_bus(&self, spec: BusSpec) -> BusId {
        let mut g = self.inner.lock();
        g.buses.push(BusState { spec });
        BusId(g.buses.len() - 1)
    }

    /// Sum of one-way latencies along `path`.
    pub fn path_latency(&self, path: &[LinkId]) -> Dur {
        let g = self.inner.lock();
        path.iter()
            .fold(Dur::ZERO, |acc, l| acc + g.links[l.0].latency)
    }

    /// Total bits that have crossed `link` so far (for assertions/stats).
    pub fn link_bits_moved(&self, link: LinkId) -> f64 {
        self.inner.lock().links[link.0].bits_moved
    }

    /// Number of flows that have completed on this network.
    pub fn completed_flows(&self) -> u64 {
        self.inner.lock().completed_flows
    }

    /// Advance every flow's progress to `now` and accumulate link counters.
    fn settle_locked(g: &mut NetInner, now: Time) {
        for f in g.flows.values_mut() {
            let dt = now.since(f.last_settle).as_secs_f64();
            if dt > 0.0 {
                let moved = (f.rate * dt).min(f.bits_rem.max(0.0));
                f.bits_rem -= moved;
                for &l in &f.path {
                    g.links[l].bits_moved += moved;
                }
            }
            f.last_settle = now;
        }
    }

    /// Recompute max-min rates and nudge every flow whose rate changed.
    fn recompute_locked(g: &mut NetInner) {
        // Bus-contention pass: trigger and stick the contended flag.
        for bus in 0..g.buses.len() {
            let spec = g.buses[bus].spec;
            let ic_active = g.flows.values().any(|f| {
                f.buses
                    .iter()
                    .any(|&(b, c)| b == bus && c == DeviceClass::Interconnect)
            });
            if !ic_active {
                continue;
            }
            let wan: Vec<u64> = g
                .flows
                .iter()
                .filter(|(_, f)| {
                    f.buses.iter().any(|&(b, c)| b == bus && c == DeviceClass::Wan)
                })
                .map(|(id, _)| *id)
                .collect();
            if wan.len() >= spec.min_wan_streams {
                for id in wan {
                    g.flows.get_mut(&id).expect("flow vanished").contended = true;
                }
            }
        }
        let caps: Vec<f64> = g.links.iter().map(|l| l.cap).collect();
        let ids: Vec<u64> = g.flows.keys().copied().collect();
        let specs: Vec<FlowSpec> = ids
            .iter()
            .map(|id| {
                let f = &g.flows[id];
                FlowSpec {
                    path: &f.path,
                    cap: f.cap,
                }
            })
            .collect();
        let rates = max_min_rates(&caps, &specs);
        let mut to_signal = Vec::new();
        for (id, rate) in ids.iter().zip(rates) {
            let f = g.flows.get_mut(id).expect("flow vanished");
            let mut rate = rate;
            if f.contended {
                // Penalized flows underutilize their allocation — that is
                // the point: bus arbitration wastes cycles, it does not
                // hand them to anyone else.
                let penalty = f
                    .buses
                    .iter()
                    .filter(|&&(_, c)| c == DeviceClass::Wan)
                    .map(|&(b, _)| g.buses[b].spec.penalty)
                    .fold(1.0f64, f64::min);
                rate *= penalty;
            }
            if (f.rate - rate).abs() > 1e-9 * rate.max(1.0) {
                f.rate = rate;
                to_signal.push(f.ev.clone());
            }
        }
        // Signal outside the borrow of `flows`; each owner re-polls and
        // re-arms its completion timer against the new rate. Signals bank a
        // permit, so an owner that has not blocked yet cannot miss one.
        for ev in to_signal {
            ev.signal();
        }
    }

    /// Move `bytes` through `path`, blocking the calling actor until the
    /// flow drains under max-min fair sharing. `flow_cap` models a per-flow
    /// ceiling such as a TCP window limit. Latency is *not* included — see
    /// [`Network::send_message`].
    pub fn transfer(&self, path: &[LinkId], bytes: u64, flow_cap: Option<Bw>) {
        self.transfer_opts(
            path,
            bytes,
            &XferOpts {
                cap: flow_cap,
                buses: Vec::new(),
            },
        );
    }

    /// Move `bytes` through `path` with full options (per-flow cap and I/O
    /// bus tags for the contention model).
    pub fn transfer_opts(&self, path: &[LinkId], bytes: u64, opts: &XferOpts) {
        self.transfer_units_opts(
            path,
            bytes as f64 * 8.0,
            opts.cap.map(|b| b.as_bps()),
            &opts.buses,
        );
    }

    /// Like [`Network::transfer`] but in raw capacity units (used by the CPU
    /// model, where a "unit" is one core-nanosecond of work).
    pub fn transfer_units(&self, path: &[LinkId], units: f64, flow_cap: Option<f64>) {
        self.transfer_units_opts(path, units, flow_cap, &[]);
    }

    fn transfer_units_opts(
        &self,
        path: &[LinkId],
        units: f64,
        flow_cap: Option<f64>,
        buses: &[(BusId, DeviceClass)],
    ) {
        if units <= 0.0 {
            return;
        }
        let ev = self.rt.event();
        let id = {
            let mut g = self.inner.lock();
            let now = self.rt.now();
            Self::settle_locked(&mut g, now);
            let id = g.next_flow;
            g.next_flow += 1;
            g.flows.insert(
                id,
                FlowState {
                    path: path.iter().map(|l| l.0).collect(),
                    cap: flow_cap,
                    rate: 0.0,
                    bits_rem: units,
                    last_settle: now,
                    ev: ev.clone(),
                    buses: buses.iter().map(|&(b, c)| (b.0, c)).collect(),
                    contended: false,
                },
            );
            Self::recompute_locked(&mut g);
            id
        };
        loop {
            let wait = {
                let mut g = self.inner.lock();
                let now = self.rt.now();
                Self::settle_locked(&mut g, now);
                let f = g.flows.get(&id).expect("own flow vanished");
                if f.bits_rem <= DONE_BITS {
                    g.flows.remove(&id);
                    g.completed_flows += 1;
                    Self::recompute_locked(&mut g);
                    return;
                }
                if f.rate <= MIN_RATE {
                    None // stalled: wait for a recompute signal
                } else {
                    // +1ns guards against round-down re-poll spinning.
                    Some(Dur::from_secs_f64(f.bits_rem / f.rate) + Dur::from_nanos(1))
                }
            };
            match wait {
                Some(d) => {
                    let _ = ev.wait_timeout(d);
                }
                None => ev.wait(),
            }
        }
    }

    /// Deliver a `bytes`-sized message over `path`: one-way latency plus the
    /// fluid transfer time. This is the building block for protocol messages
    /// (SRB requests/responses, MPI sends).
    pub fn send_message(&self, path: &[LinkId], bytes: u64, flow_cap: Option<Bw>) {
        let lat = self.path_latency(path);
        self.rt.sleep(lat);
        self.transfer(path, bytes, flow_cap);
    }

    /// [`Network::send_message`] with bus tags for the contention model.
    pub fn send_message_opts(&self, path: &[LinkId], bytes: u64, opts: &XferOpts) {
        let lat = self.path_latency(path);
        self.rt.sleep(lat);
        self.transfer_opts(path, bytes, opts);
    }

    /// Human-readable description of a link (used in diagnostics).
    pub fn link_name(&self, link: LinkId) -> String {
        self.inner.lock().links[link.0].name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semplar_runtime::{simulate, spawn};

    fn secs(t: Dur) -> f64 {
        t.as_secs_f64()
    }

    #[test]
    fn single_transfer_takes_bytes_over_bandwidth() {
        let elapsed = simulate(|rt| {
            let net = Network::new(rt.clone());
            let l = net.add_link("lan", Bw::mbps(8.0), Dur::ZERO);
            let t0 = rt.now();
            net.transfer(&[l], 1_000_000, None); // 8 Mbit over 8 Mb/s = 1 s
            rt.now() - t0
        });
        assert!((secs(elapsed) - 1.0).abs() < 1e-6, "{elapsed}");
    }

    #[test]
    fn flow_cap_limits_single_stream() {
        let elapsed = simulate(|rt| {
            let net = Network::new(rt.clone());
            let l = net.add_link("wan", Bw::mbps(100.0), Dur::ZERO);
            let t0 = rt.now();
            net.transfer(&[l], 1_000_000, Some(Bw::mbps(8.0)));
            rt.now() - t0
        });
        assert!((secs(elapsed) - 1.0).abs() < 1e-6, "{elapsed}");
    }

    #[test]
    fn two_concurrent_transfers_share_the_link() {
        let elapsed = simulate(|rt| {
            let net = Network::new(rt.clone());
            let l = net.add_link("lan", Bw::mbps(8.0), Dur::ZERO);
            let t0 = rt.now();
            let net2 = net.clone();
            let h = spawn(&rt, "peer", move || {
                net2.transfer(&[l], 1_000_000, None);
            });
            net.transfer(&[l], 1_000_000, None);
            h.join_unwrap();
            rt.now() - t0
        });
        // Two 1s-alone transfers sharing fairly: both finish at t=2s.
        assert!((secs(elapsed) - 2.0).abs() < 1e-6, "{elapsed}");
    }

    #[test]
    fn late_second_flow_slows_the_first() {
        let (t_first, t_second) = simulate(|rt| {
            let net = Network::new(rt.clone());
            let l = net.add_link("lan", Bw::mbps(8.0), Dur::ZERO);
            let net2 = net.clone();
            let rt2 = rt.clone();
            let h = spawn(&rt, "late", move || {
                rt2.sleep(Dur::from_millis(500));
                net2.transfer(&[l], 1_000_000, None);
            });
            let t0 = rt.now();
            net.transfer(&[l], 1_000_000, None);
            let t_first = rt.now() - t0;
            h.join_unwrap();
            // second flow: starts at 0.5s; shares until first done, then full
            // first: 0.5s alone (0.5 Mbyte moved) + remaining 0.5MB at half
            // rate = 1s more => finishes at 1.5s.
            (t_first, rt.now() - t0)
        });
        assert!((secs(t_first) - 1.5).abs() < 1e-6, "first {t_first}");
        // Second: 1s shared (0.5MB) + 0.5MB at full rate (0.5s) => done at 2s.
        assert!((secs(t_second) - 2.0).abs() < 1e-6, "second {t_second}");
    }

    #[test]
    fn message_includes_path_latency() {
        let elapsed = simulate(|rt| {
            let net = Network::new(rt.clone());
            let a = net.add_link("hop-a", Bw::mbps(8.0), Dur::from_millis(91));
            let b = net.add_link("hop-b", Bw::mbps(8.0), Dur::from_millis(91));
            let t0 = rt.now();
            net.send_message(&[a, b], 1_000_000, None);
            rt.now() - t0
        });
        // 182 ms latency + 1 s transfer.
        assert!((secs(elapsed) - 1.182).abs() < 1e-6, "{elapsed}");
    }

    #[test]
    fn two_capped_streams_double_throughput() {
        // The §7.2 mechanism: window cap 4 Mb/s on a 100 Mb/s link.
        let (one, two) = simulate(|rt| {
            let net = Network::new(rt.clone());
            let l = net.add_link("wan", Bw::mbps(100.0), Dur::ZERO);
            let t0 = rt.now();
            net.transfer(&[l], 1_000_000, Some(Bw::mbps(4.0)));
            let one = rt.now() - t0;

            let t1 = rt.now();
            let net2 = net.clone();
            let h = spawn(&rt, "stream2", move || {
                net2.transfer(&[l], 500_000, Some(Bw::mbps(4.0)));
            });
            net.transfer(&[l], 500_000, Some(Bw::mbps(4.0)));
            h.join_unwrap();
            (one, rt.now() - t1)
        });
        // One stream: 8 Mbit / 4 Mb/s = 2 s. Two streams, half the bytes
        // each, run concurrently at 4 Mb/s each: 1 s.
        assert!((secs(one) - 2.0).abs() < 1e-6, "{one}");
        assert!((secs(two) - 1.0).abs() < 1e-6, "{two}");
    }

    #[test]
    fn shared_nat_bottleneck_nullifies_extra_streams() {
        // 4 nodes × cap-4 streams through a 8 Mb/s NAT: doubling the number
        // of streams cannot raise aggregate throughput.
        let (t_one_each, t_two_each) = simulate(|rt| {
            let net = Network::new(rt.clone());
            let nat = net.add_link("nat", Bw::mbps(8.0), Dur::ZERO);
            let run = |streams_per_node: usize| {
                let t0 = rt.now();
                let mut hs = Vec::new();
                for n in 0..4 {
                    for s in 0..streams_per_node {
                        let net2 = net.clone();
                        let bytes = 1_000_000 / streams_per_node as u64;
                        hs.push(spawn(&rt, &format!("n{n}s{s}"), move || {
                            net2.transfer(&[nat], bytes, Some(Bw::mbps(4.0)));
                        }));
                    }
                }
                for h in hs {
                    h.join_unwrap();
                }
                rt.now() - t0
            };
            (run(1), run(2))
        });
        assert!(
            (secs(t_one_each) - secs(t_two_each)).abs() < 1e-3,
            "NAT-bound: one={t_one_each} two={t_two_each}"
        );
    }

    #[test]
    fn link_counters_track_bytes() {
        simulate(|rt| {
            let net = Network::new(rt.clone());
            let l = net.add_link("lan", Bw::mbps(8.0), Dur::ZERO);
            net.transfer(&[l], 250_000, None);
            let bits = net.link_bits_moved(l);
            assert!((bits - 2_000_000.0).abs() < 1.0, "{bits}");
            assert_eq!(net.completed_flows(), 1);
        });
    }

    #[test]
    fn bus_contention_penalizes_dual_wan_streams_under_mpi_traffic() {
        // One interconnect flow + two WAN streams on the same bus: the WAN
        // streams drop to half rate (sticky), so two streams move data no
        // faster than one did — the paper's §7.1 anomaly.
        let (one_clean, two_contended) = simulate(|rt| {
            let net = Network::new(rt.clone());
            let wan = net.add_link("wan", Bw::mbps(100.0), Dur::ZERO);
            let ic = net.add_link("myrinet", Bw::gbps(2.0), Dur::ZERO);
            let bus = net.add_bus(BusSpec { penalty: 0.5, min_wan_streams: 2 });
            let cap = Some(Bw::mbps(4.0));

            // Background interconnect traffic for the whole experiment.
            let net_ic = net.clone();
            let ic_h = spawn(&rt, "mpi-traffic", move || {
                net_ic.transfer_opts(
                    &[ic],
                    2_000_000_000, // 8 s at 2 Gb/s: outlives both WAN phases
                    &XferOpts { cap: None, buses: vec![(bus, DeviceClass::Interconnect)] },
                );
            });

            // One WAN stream: below the trigger, runs at full cap.
            let t0 = rt.now();
            net.transfer_opts(
                &[wan],
                1_000_000,
                &XferOpts { cap, buses: vec![(bus, DeviceClass::Wan)] },
            );
            let one_clean = rt.now() - t0;

            // Two WAN streams: trigger fires, both run at half rate.
            let t1 = rt.now();
            let net2 = net.clone();
            let h = spawn(&rt, "wan2", move || {
                net2.transfer_opts(
                    &[wan],
                    500_000,
                    &XferOpts { cap, buses: vec![(bus, DeviceClass::Wan)] },
                );
            });
            net.transfer_opts(
                &[wan],
                500_000,
                &XferOpts { cap, buses: vec![(bus, DeviceClass::Wan)] },
            );
            h.join_unwrap();
            let two_contended = rt.now() - t1;
            ic_h.join_unwrap();
            (one_clean, two_contended)
        });
        // One stream: 8 Mbit at 4 Mb/s = 2 s. Two contended streams: 4 Mbit
        // each at 2 Mb/s = 2 s — no better.
        assert!((secs(one_clean) - 2.0).abs() < 1e-6, "{one_clean}");
        assert!((secs(two_contended) - 2.0).abs() < 1e-6, "{two_contended}");
    }

    #[test]
    fn bus_contention_needs_interconnect_traffic() {
        // Two WAN streams with NO interconnect activity: no penalty.
        let elapsed = simulate(|rt| {
            let net = Network::new(rt.clone());
            let wan = net.add_link("wan", Bw::mbps(100.0), Dur::ZERO);
            let bus = net.add_bus(BusSpec::default());
            let cap = Some(Bw::mbps(4.0));
            let t0 = rt.now();
            let net2 = net.clone();
            let h = spawn(&rt, "wan2", move || {
                net2.transfer_opts(
                    &[wan],
                    500_000,
                    &XferOpts { cap, buses: vec![(bus, DeviceClass::Wan)] },
                );
            });
            net.transfer_opts(
                &[wan],
                500_000,
                &XferOpts { cap, buses: vec![(bus, DeviceClass::Wan)] },
            );
            h.join_unwrap();
            rt.now() - t0
        });
        assert!((secs(elapsed) - 1.0).abs() < 1e-6, "{elapsed}");
    }

    #[test]
    fn contention_is_sticky_for_flow_lifetime() {
        // The interconnect flow ends early, but already-contended WAN flows
        // stay penalized until they finish.
        let elapsed = simulate(|rt| {
            let net = Network::new(rt.clone());
            let wan = net.add_link("wan", Bw::mbps(100.0), Dur::ZERO);
            let ic = net.add_link("myrinet", Bw::gbps(1.0), Dur::ZERO);
            let bus = net.add_bus(BusSpec { penalty: 0.5, min_wan_streams: 2 });
            let cap = Some(Bw::mbps(8.0));
            // Short interconnect burst (finishes in 8 ms).
            let net_ic = net.clone();
            let ic_h = spawn(&rt, "mpi-burst", move || {
                net_ic.transfer_opts(
                    &[ic],
                    1_000_000,
                    &XferOpts { cap: None, buses: vec![(bus, DeviceClass::Interconnect)] },
                );
            });
            let t0 = rt.now();
            let net2 = net.clone();
            let h = spawn(&rt, "wan2", move || {
                net2.transfer_opts(
                    &[wan],
                    1_000_000,
                    &XferOpts { cap, buses: vec![(bus, DeviceClass::Wan)] },
                );
            });
            net.transfer_opts(
                &[wan],
                1_000_000,
                &XferOpts { cap, buses: vec![(bus, DeviceClass::Wan)] },
            );
            h.join_unwrap();
            ic_h.join_unwrap();
            rt.now() - t0
        });
        // 8 Mbit at the penalized 4 Mb/s = 2 s (vs 1 s unpenalized).
        assert!((secs(elapsed) - 2.0).abs() < 1e-3, "{elapsed}");
    }

    #[test]
    fn zero_byte_transfer_is_free() {
        simulate(|rt| {
            let net = Network::new(rt.clone());
            let l = net.add_link("lan", Bw::mbps(8.0), Dur::ZERO);
            let t0 = rt.now();
            net.transfer(&[l], 0, None);
            assert_eq!(rt.now(), t0);
        });
    }

    #[test]
    fn many_flows_conserve_bytes() {
        // 20 concurrent flows with varied sizes: total bits over the link
        // equals total bits sent, and total time equals total bits / cap.
        let (elapsed, ok) = simulate(|rt| {
            let net = Network::new(rt.clone());
            let l = net.add_link("lan", Bw::mbps(80.0), Dur::ZERO);
            let t0 = rt.now();
            let mut hs = Vec::new();
            let mut total = 0u64;
            for i in 1..=20u64 {
                let bytes = i * 50_000;
                total += bytes;
                let net2 = net.clone();
                hs.push(spawn(&rt, &format!("f{i}"), move || {
                    net2.transfer(&[l], bytes, None);
                }));
            }
            for h in hs {
                h.join_unwrap();
            }
            let elapsed = rt.now() - t0;
            let bits = net.link_bits_moved(l);
            ((elapsed, (bits - total as f64 * 8.0).abs() < 10.0), )
        })
        .0;
        // total = 50k * (1+..+20) = 10.5 MB = 84 Mbit over 80 Mb/s = 1.05 s
        assert!(ok, "byte conservation violated");
        assert!((secs(elapsed) - 1.05).abs() < 1e-4, "{elapsed}");
    }
}
