//! The membership/promotion scenario: primary crash → lease expiry →
//! quorum promotion → fenced restart → rejoin, under bounded exploration.
//!
//! [`PromotionScenario`] extends the federation crash drill with the PR-10
//! membership subsystem: the crashed primary's lease expires, the monitor
//! runs the collapsed Bracha vote, the replica seat is promoted at a bumped
//! epoch, the divergence backlog drains through the *reverse* replicator,
//! and the deposed primary restarts hard-fenced and rejoins as replica.
//! Invariants checked on every explored schedule:
//!
//! 1. **No acked byte lost** — a mid-outage federated read returns the
//!    written prefix, and after convergence *both* seats' checksums equal
//!    the checksum of the written pattern.
//! 2. **Exactly one primary per epoch** — the promotion ledger never maps
//!    one `(shard, epoch)` to two different primary seats, and promotions
//!    bump the shard epoch by exactly one.
//! 3. **Convergence** — the promotion commits, the deposed primary is
//!    re-certified, divergence drains, and replication quiesces, all in
//!    bounded virtual time.
//! 4. **No deadlock** — a poisoned simulation is a violation, not a hang.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use semplar::{AdioFile, AdioFs, FedFs, FedShard, OpenFlags, Payload, SrbFs, SrbFsConfig};
use semplar_faults::{FaultPlan, FaultStats};
use semplar_netsim::{Bw, Network};
use semplar_runtime::{Dur, Runtime, SimRuntime};
use semplar_srb::{
    adler32, ConnRoute, MembershipCfg, PromotionLedger, Replicator, RetryPolicy, SrbServer,
    SrbServerCfg, TransitionKind,
};

use crate::script::ScriptHook;
use crate::Scenario;

/// Everything observable about one promotion run. Two runs with equal
/// observations behaved bit-identically at the protocol level — the
/// membership proptest pins this per seed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PromotionObservation {
    /// The fault injector's ledger (virtual-time stamped).
    pub fault_stats: FaultStats,
    /// The membership transition ledger (promotions, rejoins).
    pub ledger: PromotionLedger,
    /// Per-file checksums on the seat holding the primary role at the end.
    pub primary_sums: Vec<u32>,
    /// Per-file checksums on the other seat.
    pub replica_sums: Vec<u32>,
    /// Operations served via failover during the outage.
    pub failovers: u64,
    /// Final epoch per shard.
    pub final_epochs: Vec<u64>,
    /// Final primary seat per shard.
    pub final_primaries: Vec<usize>,
    /// Schedule choice points hit during the run.
    pub choice_points: u64,
}

/// The 2-shard promotion drill (see module docs).
#[derive(Clone, Debug)]
pub struct PromotionScenario {
    /// Seed for the fault plan.
    pub seed: u64,
    /// Shard count (governed primary+replica pairs).
    pub shards: usize,
    /// Files written round-robin across the namespace.
    pub files: usize,
    /// Bytes written per file.
    pub bytes_per_file: u64,
    /// Write chunk size.
    pub chunk: u64,
    /// When the owning primary crashes (virtual time from workload start).
    pub crash_at: Dur,
    /// How long it stays down. Must exceed `lease_timeout` by enough for
    /// the vote to commit while the old primary is still dark.
    pub crash_down_for: Dur,
    /// Membership tuning (heartbeat cadence, lease, vote hop delay).
    pub membership: MembershipCfg,
    /// Eligibility window handed to the schedule hook.
    pub window: Dur,
}

impl PromotionScenario {
    /// The bounded exploration payload: 2 governed shards, 2 files of
    /// 256 KiB in 64 KiB chunks, primary crash at 100 ms for 250 ms with a
    /// 10 ms heartbeat and 40 ms lease — the lease expires and the vote
    /// commits mid-outage, and the restart lands after promotion so the
    /// deposed primary comes back fenced into the old epoch.
    pub fn quick(seed: u64) -> PromotionScenario {
        PromotionScenario {
            seed,
            shards: 2,
            files: 2,
            bytes_per_file: 256 << 10,
            chunk: 64 << 10,
            crash_at: Dur::from_millis(100),
            crash_down_for: Dur::from_millis(250),
            membership: MembershipCfg {
                heartbeat_every: Dur::from_millis(10),
                lease_timeout: Dur::from_millis(40),
                hop_delay: Dur::from_millis(1),
                base_epoch: 1,
                witnesses: 0,
            },
            window: Dur::from_millis(5),
        }
    }

    /// The deterministic byte at `offset + k` of file `file`.
    fn pattern(file: usize, offset: u64, len: u64) -> Vec<u8> {
        (0..len)
            .map(|k| (((offset + k) as usize).wrapping_mul(137) + file * 41 + 11) as u8)
            .collect()
    }

    /// Execute one schedule and return the full observation. `hook: None`
    /// runs the plain engine.
    pub fn observe(&self, hook: Option<Arc<ScriptHook>>) -> Result<PromotionObservation, String> {
        let sim = SimRuntime::new();
        if let Some(h) = hook {
            sim.set_schedule_hook(h, self.window);
        }
        let cfg = self.clone();
        let result = catch_unwind(AssertUnwindSafe(|| sim.run_root(move |rt| cfg.body(rt))));
        let choice_points = sim.stats().choice_points;
        match result {
            Ok(Ok(mut obs)) => {
                obs.choice_points = choice_points;
                Ok(obs)
            }
            Ok(Err(violation)) => Err(violation),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "opaque panic".to_string());
                Err(format!("simulation panicked: {msg}"))
            }
        }
    }

    /// Ledger invariant 2: each `(shard, epoch)` owned by exactly one
    /// primary seat; promotions bump the epoch by exactly one.
    fn check_ledger(&self, ledger: &PromotionLedger) -> Result<(), String> {
        let mut owner: std::collections::HashMap<(usize, u64), usize> =
            std::collections::HashMap::new();
        let mut last_epoch = vec![self.membership.base_epoch.max(1); self.shards];
        for e in &ledger.entries {
            if let Some(&prev) = owner.get(&(e.shard, e.epoch)) {
                if prev != e.primary {
                    return Err(format!(
                        "split brain: shard {} epoch {} has primaries {} and {}",
                        e.shard, e.epoch, prev, e.primary
                    ));
                }
            } else {
                owner.insert((e.shard, e.epoch), e.primary);
            }
            match e.kind {
                TransitionKind::Promoted => {
                    if e.epoch != last_epoch[e.shard] + 1 {
                        return Err(format!(
                            "promotion on shard {} jumped epoch {} -> {}",
                            e.shard, last_epoch[e.shard], e.epoch
                        ));
                    }
                    last_epoch[e.shard] = e.epoch;
                }
                TransitionKind::Resharded => last_epoch[e.shard] = e.epoch,
                TransitionKind::Rejoined => {
                    if e.epoch != last_epoch[e.shard] {
                        return Err(format!(
                            "rejoin on shard {} certified epoch {} but {} is in force",
                            e.shard, e.epoch, last_epoch[e.shard]
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// The workload body, run as the simulation's root actor.
    fn body(&self, rt: Arc<dyn Runtime>) -> Result<PromotionObservation, String> {
        let net = Network::new(rt.clone());
        let mut shards = Vec::with_capacity(self.shards);
        let mut primaries: Vec<Arc<SrbServer>> = Vec::with_capacity(self.shards);
        for s in 0..self.shards {
            let route = |name: String, bw: f64, lat: u64| ConnRoute {
                fwd: vec![net.add_link(&format!("{name}-f"), Bw::mbps(bw), Dur::from_millis(lat))],
                rev: vec![net.add_link(&format!("{name}-r"), Bw::mbps(bw), Dur::from_millis(lat))],
                send_cap: None,
                recv_cap: None,
                bus: None,
            };
            let primary = SrbServer::new(net.clone(), SrbServerCfg::default());
            let replica = SrbServer::new(net.clone(), SrbServerCfg::default());
            for srv in [&primary, &replica] {
                srv.mcat().add_user("u", "p");
                srv.mcat().add_user("fed", "fed");
            }
            let cfg = |r: ConnRoute| SrbFsConfig {
                route: r,
                user: "u".into(),
                password: "p".into(),
            };
            let primary_fs = SrbFs::with_retry(
                primary.clone(),
                cfg(route(format!("s{s}p"), 50.0, 10)),
                RetryPolicy::none(),
            );
            let replica_fs = SrbFs::with_retry(
                replica.clone(),
                cfg(route(format!("s{s}r"), 50.0, 10)),
                RetryPolicy::none(),
            );
            let forward = Replicator::start(
                &rt,
                primary.clone(),
                replica.clone(),
                route(format!("s{s}x"), 1000.0, 1),
                "fed",
                "fed",
                RetryPolicy::default(),
            );
            let reverse = Replicator::start_inactive(
                &rt,
                replica.clone(),
                primary.clone(),
                route(format!("s{s}v"), 1000.0, 1),
                "fed",
                "fed",
                RetryPolicy::default(),
            );
            primaries.push(primary);
            shards.push(FedShard {
                primary: primary_fs,
                replica: replica_fs,
                replicator: Some(forward),
                reverse: Some(reverse),
            });
        }
        let fed = FedFs::new(&rt, shards);
        let membership = fed.enable_membership(self.membership);
        fed.mk_coll_all("/fed")
            .map_err(|e| format!("mk /fed: {e:?}"))?;
        let paths: Vec<String> = (0..self.files).map(|i| format!("/fed/ha{i}")).collect();
        let first_shard = fed.shard_of(&paths[0]);
        let old_primary = primaries[first_shard].clone();
        let inj = FaultPlan::new(self.seed)
            .server_crash_at(self.crash_at, self.crash_down_for)
            .inject(&rt, &net, &old_primary);

        let mut handles: Vec<Box<dyn AdioFile>> = Vec::with_capacity(paths.len());
        for p in &paths {
            handles.push(
                fed.open(p, OpenFlags::CreateRw)
                    .map_err(|e| format!("open {p}: {e:?}"))?,
            );
        }
        let chunks = self.bytes_per_file / self.chunk;
        let total_extents = chunks as usize * self.files;
        let mut outage_read_checked = false;
        for c in 0..chunks {
            for (i, h) in handles.iter_mut().enumerate() {
                let data = Payload::bytes(Self::pattern(i, c * self.chunk, self.chunk));
                let n = h
                    .write_at(c * self.chunk, &data)
                    .map_err(|e| format!("write {}@{}: {e:?}", paths[i], c * self.chunk))?;
                if n != self.chunk {
                    return Err(format!(
                        "short write on {}: {n} != {}",
                        paths[i], self.chunk
                    ));
                }
            }
            if fed.divergent_extents() > total_extents {
                return Err("divergence queue unbounded".to_string());
            }
            if !outage_read_checked && fed.failovers() > 0 {
                // Invariant 1 (during the outage): every acked byte of the
                // crashed shard's file is readable through the federation.
                let mut r = fed
                    .open(&paths[0], OpenFlags::Read)
                    .map_err(|e| format!("outage open: {e:?}"))?;
                let got = r
                    .read_at(0, self.chunk)
                    .map_err(|e| format!("outage read: {e:?}"))?;
                let _ = r.close();
                let want = Self::pattern(0, 0, self.chunk);
                if got.data().map(|d| d != &want[..]).unwrap_or(true) {
                    return Err("acked bytes lost during outage".to_string());
                }
                outage_read_checked = true;
            }
        }
        for mut h in handles {
            h.close().map_err(|e| format!("close: {e:?}"))?;
        }
        // The injector must finish (crash + restart) in bounded time.
        let mut waited = 0;
        while !inj.done() {
            waited += 1;
            if waited > 600 {
                return Err("fault injector stalled".to_string());
            }
            rt.sleep(Dur::from_millis(10));
        }
        // Invariant 3a: the lease expired and a promotion committed.
        let mut waited = 0;
        while !membership
            .ledger()
            .promotions()
            .any(|e| e.shard == first_shard)
        {
            waited += 1;
            if waited > 200 {
                return Err("lease expiry never produced a promotion".to_string());
            }
            rt.sleep(Dur::from_millis(10));
        }
        if fed.primary_seat_of(first_shard) != 1 {
            return Err("promotion committed but the role never swapped".to_string());
        }
        // Invariant 3b: the deposed primary is re-certified into the new
        // epoch (it restarted hard-fenced).
        let mut waited = 0;
        while old_primary.is_fenced() {
            waited += 1;
            if waited > 200 {
                return Err("deposed primary never rejoined".to_string());
            }
            rt.sleep(Dur::from_millis(10));
        }
        // Invariant 3c: replication quiesces in both directions and the
        // divergence queues drain.
        for shard in fed.shards() {
            for repl in [&shard.replicator, &shard.reverse].into_iter().flatten() {
                repl.quiesce();
            }
        }
        let mut rounds = 0;
        while !fed.reconcile() {
            rounds += 1;
            if rounds > 400 {
                return Err(format!(
                    "reconcile did not converge: {} divergent extents",
                    fed.divergent_extents()
                ));
            }
            rt.sleep(Dur::from_millis(10));
        }
        if fed.divergent_extents() != 0 {
            return Err("divergence queue not drained".to_string());
        }
        // Invariant 1 (final): both seats hold exactly the written bytes.
        let sums = |primary_role: bool| -> Result<Vec<u32>, String> {
            paths
                .iter()
                .map(|p| {
                    let shard = fed.shard_of(p);
                    let fs = if primary_role {
                        fed.primary_fs(shard)
                    } else {
                        fed.replica_fs(shard)
                    };
                    let conn = fs.admin_conn().map_err(|e| format!("admin conn: {e:?}"))?;
                    let sum = conn
                        .checksum(p)
                        .map_err(|e| format!("checksum {p}: {e:?}"))?;
                    let _ = conn.disconnect();
                    Ok(sum)
                })
                .collect()
        };
        let primary_sums = sums(true)?;
        let replica_sums = sums(false)?;
        for (i, p) in paths.iter().enumerate() {
            let want = adler32(&Self::pattern(i, 0, self.bytes_per_file));
            if primary_sums[i] != want {
                return Err(format!("acked bytes lost: primary mismatch on {p}"));
            }
            if replica_sums[i] != want {
                return Err(format!("deposed primary diverged: replica mismatch on {p}"));
            }
        }
        let ledger = membership.ledger();
        // Invariant 2: exactly one primary per (shard, epoch).
        self.check_ledger(&ledger)?;
        Ok(PromotionObservation {
            fault_stats: inj.stats(),
            ledger,
            primary_sums,
            replica_sums,
            failovers: fed.failovers(),
            final_epochs: (0..self.shards).map(|s| membership.epoch(s)).collect(),
            final_primaries: (0..self.shards).map(|s| membership.primary_of(s)).collect(),
            choice_points: 0,
        })
    }
}

impl Scenario for PromotionScenario {
    fn name(&self) -> &str {
        "membership-promotion"
    }

    fn run(&self, hook: Arc<ScriptHook>) -> Result<(), String> {
        self.observe(Some(hook)).map(|_| ())
    }

    /// Same argument as [`FederationScenario`](crate::FederationScenario):
    /// two ship-block events eligible together belong to different
    /// replicator daemons with disjoint targets, so they commute. All
    /// membership points (heartbeats, vote rounds) share the shard
    /// governance state and stay ordered.
    fn commutes(&self, a: &str, b: &str) -> bool {
        a == "replicator/ship-block" && b == "replicator/ship-block"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, ExploreCfg};

    #[test]
    fn default_schedule_promotes_and_converges() {
        let sc = PromotionScenario::quick(7);
        let obs = sc
            .observe(Some(ScriptHook::default_schedule()))
            .expect("run");
        assert!(obs.failovers > 0, "crash never forced a failover");
        let promoted: Vec<_> = obs.ledger.promotions().collect();
        assert_eq!(promoted.len(), 1, "exactly one promotion: {:?}", obs.ledger);
        assert_eq!(promoted[0].epoch, 2);
        assert_eq!(promoted[0].primary, 1);
        // n = 4 seats, f = 1: the vote needed 3 echoes and 3 readies, and
        // with one seat crashed that is exactly what it got.
        assert_eq!((promoted[0].echoes, promoted[0].readies), (3, 3));
        assert!(
            obs.ledger
                .entries
                .iter()
                .any(|e| e.kind == TransitionKind::Rejoined),
            "the deposed primary never rejoined: {:?}",
            obs.ledger
        );
        assert_eq!(obs.final_primaries[obs.ledger.entries[0].shard], 1);
        assert!(obs.choice_points > 0, "no schedule choice points surfaced");
    }

    #[test]
    fn observation_is_deterministic_per_seed() {
        let sc = PromotionScenario::quick(11);
        let a = sc.observe(None).expect("run a");
        let b = sc.observe(None).expect("run b");
        assert_eq!(a, b, "same seed must give a bit-identical observation");
    }

    #[test]
    fn small_exploration_finds_no_violations() {
        let report = explore(
            &PromotionScenario::quick(7),
            &ExploreCfg {
                depth: 3,
                max_executions: 8,
                por: true,
                ..ExploreCfg::default()
            },
        );
        assert!(report.executions >= 2, "scenario exposed too few schedules");
        assert_eq!(report.violations, 0, "{:?}", report.counterexample);
    }
}
