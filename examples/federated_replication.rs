//! SRB federation (paper §8): two brokers in different data centers; a
//! client writes to the nearby server and asks it to replicate the object
//! to the far one — the primary acts as a *client* of its peer. Runs under
//! virtual time so the cross-country replication is instant to watch.
//!
//! ```text
//! cargo run --release --example federated_replication
//! ```

use semplar_repro::netsim::{Bw, Network};
use semplar_repro::runtime::{simulate, Dur};
use semplar_repro::srb::{ConnRoute, OpenFlags, Payload, SrbServer, SrbServerCfg};

fn main() {
    simulate(|rt| {
        let net = Network::new(rt.clone());
        // Client ↔ primary: a campus link.
        let c_up = net.add_link("campus-up", Bw::mbps(100.0), Dur::from_millis(2));
        let c_down = net.add_link("campus-down", Bw::mbps(100.0), Dur::from_millis(2));
        // Primary ↔ mirror: a cross-country research link.
        let f_up = net.add_link("abilene-up", Bw::mbps(155.0), Dur::from_millis(35));
        let f_down = net.add_link("abilene-down", Bw::mbps(155.0), Dur::from_millis(35));

        let sdsc = SrbServer::new(net.clone(), SrbServerCfg::default());
        sdsc.mcat().add_user("alin", "hpdc06");
        let ncsa = SrbServer::new(
            net.clone(),
            SrbServerCfg {
                name: "ncsa-mirror".into(),
                ..SrbServerCfg::default()
            },
        );
        ncsa.mcat().add_user("fed-svc", "xyz");
        sdsc.add_peer(
            "ncsa",
            ncsa.clone(),
            ConnRoute {
                fwd: vec![f_up],
                rev: vec![f_down],
                send_cap: None,
                recv_cap: None,
                bus: None,
            },
            "fed-svc",
            "xyz",
        );

        // The client writes a 20 MB dataset to the primary...
        let conn = sdsc
            .connect(
                ConnRoute {
                    fwd: vec![c_up],
                    rev: vec![c_down],
                    send_cap: None,
                    recv_cap: None,
                    bus: None,
                },
                "alin",
                "hpdc06",
            )
            .expect("connect");
        conn.mk_coll("/experiments").expect("mk_coll");
        let fd = conn
            .open("/experiments/run42.dat", OpenFlags::CreateRw)
            .expect("open");
        let t0 = rt.now();
        conn.write(fd, 0, Payload::sized(20 << 20)).expect("write");
        conn.close_fd(fd).expect("close fd");
        println!("wrote 20 MB to the primary in {} (virtual)", rt.now() - t0);

        // ...then replicates it to the mirror in one call.
        let t0 = rt.now();
        conn.replicate("/experiments/run42.dat", "ncsa")
            .expect("replicate");
        println!("replicated to the mirror in {} (virtual)", rt.now() - t0);

        let st = conn.stat("/experiments/run42.dat").expect("stat");
        println!("catalog: {} bytes, {} replicas", st.size, st.replicas);
        conn.disconnect().expect("disconnect");

        // The mirror really has it.
        let mconn = ncsa
            .connect(
                ConnRoute {
                    fwd: vec![f_up],
                    rev: vec![f_down],
                    send_cap: None,
                    recv_cap: None,
                    bus: None,
                },
                "fed-svc",
                "xyz",
            )
            .expect("connect mirror");
        let mst = mconn
            .stat("/experiments/run42.dat")
            .expect("stat on mirror");
        println!("mirror holds {} bytes at the same logical path", mst.size);
        assert_eq!(mst.size, 20 << 20);
        mconn.disconnect().expect("disconnect mirror");
    });
}
