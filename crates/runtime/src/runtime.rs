//! The [`Runtime`] abstraction.
//!
//! Everything in the SEMPLAR stack — the SRB client/server, the message
//! passing runtime, and the asynchronous I/O engine itself — blocks and
//! sleeps only through a [`Runtime`] handle. This gives us two
//! interchangeable execution modes:
//!
//! * [`SimRuntime`](crate::SimRuntime): virtual time. Every simulated thread
//!   is a real OS thread; the clock jumps to the next pending timer whenever
//!   all registered actors are blocked. Experiments over transoceanic links
//!   finish in milliseconds of wall time and produce stable timings.
//! * [`RealRuntime`](crate::RealRuntime): wall-clock time, plain
//!   `std::thread` primitives. Used by unit tests and the runnable examples.
//!
//! The blocking primitive is the [`Event`], a counting semaphore with an
//! optional timeout and a broadcast. All higher-level structures
//! ([`Channel`](crate::sync::Channel), [`Barrier`](crate::sync::Barrier), …)
//! are built from `Event` + `Mutex` with re-check loops, so spurious wakeups
//! (including broadcasts) are always safe.

use std::any::Any;
use std::sync::Arc;

use crate::time::{Dur, Time};

/// Why a blocked waiter resumed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wake {
    /// A permit was delivered via [`EventApi::signal`] or the waiter was
    /// released by [`EventApi::notify_all`].
    Signaled,
    /// The timeout passed first.
    Timeout,
}

/// A counting-semaphore style wait/notify cell.
///
/// `signal` adds one permit (waking one waiter if present); `wait` consumes a
/// permit, blocking until one is available. `notify_all` releases every
/// current waiter *without* banking permits — waiters treat it as a spurious
/// wakeup and must re-check their condition.
pub trait EventApi: Send + Sync {
    /// Block until a permit is available (or a broadcast releases us).
    fn wait(&self);

    /// Block until a permit is available, a broadcast releases us, or `d`
    /// elapses. Returns [`Wake::Timeout`] only if the timeout fired first.
    fn wait_timeout(&self, d: Dur) -> Wake;

    /// Add one permit, waking one waiter if any is blocked.
    fn signal(&self);

    /// Add `n` permits.
    fn signal_n(&self, n: usize) {
        for _ in 0..n {
            self.signal();
        }
    }

    /// Wake every currently blocked waiter without banking permits.
    fn notify_all(&self);
}

/// A shared handle to an event cell.
pub type Event = Arc<dyn EventApi>;

/// The result of joining a spawned actor: `Err` carries the panic payload.
pub type JoinResult = Result<(), Box<dyn Any + Send + 'static>>;

struct JoinShared {
    done: Event,
    payload: parking_lot::Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

/// Handle to a spawned actor. Joining blocks through the runtime, so it is
/// safe to call from inside other actors in simulated time.
pub struct JoinHandle {
    shared: Arc<JoinShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl JoinHandle {
    pub(crate) fn new(done: Event) -> (JoinHandle, ActorExit) {
        let shared = Arc::new(JoinShared {
            done,
            payload: parking_lot::Mutex::new(None),
        });
        (
            JoinHandle {
                shared: shared.clone(),
                thread: None,
            },
            ActorExit { shared },
        )
    }

    pub(crate) fn set_thread(&mut self, t: std::thread::JoinHandle<()>) {
        self.thread = Some(t);
    }

    /// Wait for the actor to finish. Returns the panic payload if it
    /// panicked.
    pub fn join(mut self) -> JoinResult {
        self.shared.done.wait();
        if let Some(t) = self.thread.take() {
            // The actor has already signalled `done`, so the OS thread is at
            // (or moments from) exit; this join does not block in any way the
            // virtual clock needs to know about.
            let _ = t.join();
        }
        match self.shared.payload.lock().take() {
            Some(p) => Err(p),
            None => Ok(()),
        }
    }

    /// Wait for the actor to finish, propagating its panic if it panicked.
    pub fn join_unwrap(self) {
        if let Err(p) = self.join() {
            std::panic::resume_unwind(p);
        }
    }
}

/// Used by runtime implementations to publish an actor's exit.
pub(crate) struct ActorExit {
    shared: Arc<JoinShared>,
}

impl ActorExit {
    pub(crate) fn finish(&self, panic: Option<Box<dyn Any + Send + 'static>>) {
        if let Some(p) = panic {
            *self.shared.payload.lock() = Some(p);
        }
        self.shared.done.signal();
        // Keep signalling so multiple waiters (join + watchdogs) all wake.
        self.shared.done.notify_all();
    }
}

/// An execution environment: a clock, a sleeper, a spawner, and a factory
/// for blocking [`Event`] cells.
pub trait Runtime: Send + Sync {
    /// The current time on this runtime's clock.
    fn now(&self) -> Time;

    /// Block the calling actor for `d`.
    fn sleep(&self, d: Dur);

    /// Spawn a named actor. The name appears in deadlock diagnostics.
    fn spawn(&self, name: &str, f: Box<dyn FnOnce() + Send + 'static>) -> JoinHandle;

    /// Spawn a *daemon* actor: one that does not keep the simulation alive.
    /// Under virtual time, when only daemons remain blocked with no pending
    /// timer, they are unwound cleanly and the simulation completes. Use for
    /// server-side connection handlers and other request-driven loops.
    /// Under wall-clock time this is a plain spawn (daemon threads simply
    /// die with the process).
    fn spawn_daemon(&self, name: &str, f: Box<dyn FnOnce() + Send + 'static>) -> JoinHandle {
        self.spawn(name, f)
    }

    /// Create a fresh event cell bound to this runtime.
    fn event(&self) -> Event;

    /// True when running under virtual time. Workload code uses this to
    /// decide whether to charge modelled compute time or burn real CPU.
    fn is_simulated(&self) -> bool;

    /// Declare an explorable schedule point labelled `tag`. A no-op (zero
    /// cost, no blocking) everywhere except under a virtual-time runtime
    /// with a [schedule hook](crate::SimRuntime::set_schedule_hook)
    /// installed, where the calling actor's continuation becomes an
    /// eligible event the exploration strategy can order against every
    /// other pending event in the window. Protocol code sprinkles these at
    /// decision points a model checker should control: shipping a
    /// replication block, replaying a reconcile extent, firing a fault.
    fn schedule_point(&self, _tag: &str) {}

    /// Bookkeeping hook: an event-driven [`Task`](crate::task::Task) was
    /// spawned on an executor bound to this runtime. Default no-op; the
    /// virtual-time runtime counts tasks separately from thread actors in
    /// [`SimStats`](crate::SimStats).
    fn task_spawned(&self) {}

    /// Bookkeeping hook: an event-driven task completed. Default no-op.
    fn task_finished(&self) {}
}

/// Convenience: spawn with a closure instead of a boxed closure.
pub fn spawn<F>(rt: &Arc<dyn Runtime>, name: &str, f: F) -> JoinHandle
where
    F: FnOnce() + Send + 'static,
{
    rt.spawn(name, Box::new(f))
}
