//! # semplar-faults
//!
//! Deterministic fault injection for the SEMPLAR stack.
//!
//! The paper's motivation is remote I/O to a production server over a real
//! WAN — an environment where links flap, servers restart, and TCP streams
//! get reset. This crate turns those hazards into a *schedule*: a
//! [`FaultPlan`] is a list of [`FaultEvent`]s with virtual-time stamps,
//! built either explicitly (`server_crash_at`) or from a seeded RNG
//! (`link_flap` spreads its outages with deterministic jitter). Injecting
//! the plan spawns a daemon actor that replays it against live targets —
//! the [`Network`]'s link capacities, the [`SrbServer`]'s connection state,
//! the vault's disk — and keeps a [`FaultStats`] ledger of everything it
//! did, stamped in virtual time.
//!
//! Because the clock is virtual and the jitter is seeded, the same plan
//! over the same workload produces bit-identical fault timings, ledgers,
//! and (given correct recovery) file contents, run after run. Chaos you
//! can put in a regression test.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::{rngs::StdRng, Rng, SeedableRng};
use semplar_netsim::{Bw, LinkId, Network};
use semplar_runtime::{Dur, Runtime, Time};
use semplar_srb::SrbServer;

/// One scheduled fault. `at` is virtual time since injection.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// Take a link down (capacity → 0; in-flight flows stall).
    LinkDown {
        /// When to inject.
        at: Dur,
        /// The link to cut.
        link: LinkId,
    },
    /// Restore a link downed earlier to its pre-fault capacity.
    LinkUp {
        /// When to inject.
        at: Dur,
        /// The link to restore.
        link: LinkId,
    },
    /// Scale a link's current capacity by `factor` (congestion, a flaky
    /// line card). `LinkUp` restores the capacity saved by the first
    /// degrade/down on that link.
    LinkDegrade {
        /// When to inject.
        at: Dur,
        /// The link to throttle.
        link: LinkId,
        /// Capacity multiplier in (0, 1].
        factor: f64,
    },
    /// Crash a server: sever every connection, refuse new ones.
    ServerCrash {
        /// When to inject.
        at: Dur,
        /// Which server in the injector's target list (0 for the single-
        /// server [`FaultPlan::inject`]).
        server: usize,
    },
    /// Bring a crashed server back (catalog and vault state intact).
    ServerRestart {
        /// When to inject.
        at: Dur,
        /// Which server in the injector's target list.
        server: usize,
    },
    /// Reset (RST) every live client connection without downing the server.
    ConnReset {
        /// When to inject.
        at: Dur,
    },
    /// Occupy the server's disk with `bytes` of competing traffic — the
    /// slow-vault fault. Concurrent vault I/O slows until it drains.
    VaultStall {
        /// When to inject.
        at: Dur,
        /// Competing disk traffic, bytes.
        bytes: u64,
    },
}

impl FaultEvent {
    /// The event's scheduled injection time.
    pub fn at(&self) -> Dur {
        match self {
            FaultEvent::LinkDown { at, .. }
            | FaultEvent::LinkUp { at, .. }
            | FaultEvent::LinkDegrade { at, .. }
            | FaultEvent::ServerCrash { at, .. }
            | FaultEvent::ServerRestart { at, .. }
            | FaultEvent::ConnReset { at }
            | FaultEvent::VaultStall { at, .. } => *at,
        }
    }
}

/// Ledger of what an injector actually did, stamped in virtual time.
/// Derived entirely from the virtual clock and the seeded plan, so two
/// runs of the same plan over the same workload compare equal with `==`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultStats {
    /// Every injected event: (virtual time of injection, description).
    pub ledger: Vec<(Time, String)>,
    /// Links taken down.
    pub link_downs: u64,
    /// Links restored.
    pub link_ups: u64,
    /// Links degraded.
    pub degrades: u64,
    /// Server crashes.
    pub crashes: u64,
    /// Server restarts.
    pub restarts: u64,
    /// Connection-reset events.
    pub resets: u64,
    /// Vault stalls started.
    pub stalls: u64,
    /// Connections severed by crashes and resets combined.
    pub conns_severed: u64,
}

impl FaultStats {
    /// Total events injected so far.
    pub fn injected(&self) -> usize {
        self.ledger.len()
    }
}

/// A deterministic schedule of faults.
///
/// ```ignore
/// let plan = FaultPlan::new(42)
///     .link_flap(wan_up, Dur::from_secs(2), Dur::from_millis(500), 3)
///     .server_crash_at(Dur::from_secs(10), Dur::from_secs(1))
///     .conn_reset_at(Dur::from_secs(15));
/// let injector = plan.inject(&rt, &net, &server);
/// ```
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    rng: StdRng,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan. `seed` drives every randomized choice the builder
    /// makes (flap jitter), so equal seeds build equal plans.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rng: StdRng::seed_from_u64(seed),
            events: Vec::new(),
        }
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Add one raw event.
    pub fn event(mut self, ev: FaultEvent) -> FaultPlan {
        self.events.push(ev);
        self
    }

    /// Flap `link` `times` times: the first outage starts at `first_at`
    /// and lasts `down_for`; subsequent outages repeat after a gap of one
    /// to two outage lengths, drawn from the plan's seeded RNG.
    pub fn link_flap(
        mut self,
        link: LinkId,
        first_at: Dur,
        down_for: Dur,
        times: u32,
    ) -> FaultPlan {
        let mut at = first_at;
        for _ in 0..times {
            self.events.push(FaultEvent::LinkDown { at, link });
            self.events.push(FaultEvent::LinkUp {
                at: at + down_for,
                link,
            });
            let gap = down_for.as_secs_f64() * (1.0 + self.rng.gen::<f64>());
            at = at + down_for + Dur::from_secs_f64(gap);
        }
        self
    }

    /// Throttle `link` to `factor` of its capacity at `at`, restoring it
    /// after `for_dur`.
    pub fn link_degrade_at(
        mut self,
        link: LinkId,
        at: Dur,
        factor: f64,
        for_dur: Dur,
    ) -> FaultPlan {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        self.events
            .push(FaultEvent::LinkDegrade { at, link, factor });
        self.events.push(FaultEvent::LinkUp {
            at: at + for_dur,
            link,
        });
        self
    }

    /// Crash the (single) server at `at` and restart it `down_for` later.
    pub fn server_crash_at(self, at: Dur, down_for: Dur) -> FaultPlan {
        self.server_crash_on(0, at, down_for)
    }

    /// Crash the `server`-th target of a multi-server injector at `at` and
    /// restart it `down_for` later. With [`FaultPlan::inject_multi`] the
    /// index selects from the target list; plain [`FaultPlan::inject`]
    /// accepts only index 0.
    pub fn server_crash_on(mut self, server: usize, at: Dur, down_for: Dur) -> FaultPlan {
        self.events.push(FaultEvent::ServerCrash { at, server });
        self.events.push(FaultEvent::ServerRestart {
            at: at + down_for,
            server,
        });
        self
    }

    /// Reset every live connection at `at`.
    pub fn conn_reset_at(mut self, at: Dur) -> FaultPlan {
        self.events.push(FaultEvent::ConnReset { at });
        self
    }

    /// Occupy the server disk with `bytes` of competing traffic at `at`.
    pub fn vault_stall_at(mut self, at: Dur, bytes: u64) -> FaultPlan {
        self.events.push(FaultEvent::VaultStall { at, bytes });
        self
    }

    /// Spawn the injector daemon: it replays this plan's events in time
    /// order against `net` and `server`, starting the clock at the moment
    /// of this call. The daemon does not keep the simulation alive past
    /// the workload. Returns a handle for reading the [`FaultStats`].
    pub fn inject(
        &self,
        rt: &Arc<dyn Runtime>,
        net: &Arc<Network>,
        server: &Arc<SrbServer>,
    ) -> FaultInjector {
        self.inject_multi(rt, net, std::slice::from_ref(server))
    }

    /// Like [`FaultPlan::inject`], but against a *list* of servers so one
    /// plan can crash and restart different members of a federation.
    /// Server-targeted events pick their victim by index into `servers`;
    /// [`FaultEvent::ConnReset`] and [`FaultEvent::VaultStall`] always hit
    /// `servers[0]`. Panics if an event names an out-of-range index.
    pub fn inject_multi(
        &self,
        rt: &Arc<dyn Runtime>,
        net: &Arc<Network>,
        servers: &[Arc<SrbServer>],
    ) -> FaultInjector {
        assert!(
            !servers.is_empty(),
            "inject_multi needs at least one server"
        );
        for ev in &self.events {
            if let FaultEvent::ServerCrash { server, .. }
            | FaultEvent::ServerRestart { server, .. } = ev
            {
                assert!(
                    *server < servers.len(),
                    "event targets server {server} but only {} were given",
                    servers.len()
                );
            }
        }
        let mut events = self.events.clone();
        // Stable: simultaneous events fire in insertion order.
        events.sort_by_key(|e| e.at());
        let total = events.len();
        let stats = Arc::new(Mutex::new(FaultStats::default()));
        let handle = FaultInjector {
            stats: stats.clone(),
            total,
        };
        let rt2 = rt.clone();
        let net = net.clone();
        let servers: Vec<Arc<SrbServer>> = servers.to_vec();
        rt.spawn_daemon(
            "faults/injector",
            Box::new(move || {
                let start = rt2.now();
                // Original capacities of links we have faulted, for LinkUp.
                let mut saved: HashMap<LinkId, Bw> = HashMap::new();
                for ev in events {
                    let due = start + ev.at();
                    let now = rt2.now();
                    if due > now {
                        rt2.sleep(due - now);
                    }
                    // Under a schedule hook, the injection instant itself is
                    // an explorable choice: the model checker may defer the
                    // fault past other events in its window.
                    let tag = match &ev {
                        FaultEvent::LinkDown { .. } => "fault/link-down",
                        FaultEvent::LinkUp { .. } => "fault/link-up",
                        FaultEvent::LinkDegrade { .. } => "fault/link-degrade",
                        FaultEvent::ServerCrash { .. } => "fault/server-crash",
                        FaultEvent::ServerRestart { .. } => "fault/server-restart",
                        FaultEvent::ConnReset { .. } => "fault/conn-reset",
                        FaultEvent::VaultStall { .. } => "fault/vault-stall",
                    };
                    rt2.schedule_point(tag);
                    let now = rt2.now();
                    let (entry, severed) = match &ev {
                        FaultEvent::LinkDown { link, .. } => {
                            saved
                                .entry(*link)
                                .or_insert_with(|| net.link_capacity(*link));
                            net.set_link_capacity(*link, Bw::ZERO);
                            (format!("link {:?} down", link), 0)
                        }
                        FaultEvent::LinkUp { link, .. } => {
                            if let Some(cap) = saved.remove(link) {
                                net.set_link_capacity(*link, cap);
                            }
                            (format!("link {:?} up", link), 0)
                        }
                        FaultEvent::LinkDegrade { link, factor, .. } => {
                            let cap = net.link_capacity(*link);
                            saved.entry(*link).or_insert(cap);
                            net.set_link_capacity(*link, Bw::bps(cap.as_bps() * factor));
                            (format!("link {:?} degraded x{}", link, factor), 0)
                        }
                        FaultEvent::ServerCrash { server, .. } => {
                            let n = servers[*server].crash();
                            // Committed ledgers predate multi-server plans:
                            // keep the index-0 wording byte-identical.
                            let who = if *server == 0 {
                                "server".to_string()
                            } else {
                                format!("server {server}")
                            };
                            (format!("{who} crash ({n} conns severed)"), n)
                        }
                        FaultEvent::ServerRestart { server, .. } => {
                            servers[*server].restart();
                            let who = if *server == 0 {
                                "server".to_string()
                            } else {
                                format!("server {server}")
                            };
                            (format!("{who} restart"), 0)
                        }
                        FaultEvent::ConnReset { .. } => {
                            let n = servers[0].reset_all_connections();
                            (format!("connection reset ({n} conns severed)"), n)
                        }
                        FaultEvent::VaultStall { bytes, .. } => {
                            // The stall must occupy the disk without
                            // delaying the rest of the schedule.
                            let vault = servers[0].vault().clone();
                            let bytes = *bytes;
                            rt2.spawn_daemon(
                                "faults/vault-stall",
                                Box::new(move || vault.inject_load(bytes)),
                            );
                            (format!("vault stall ({bytes} bytes)"), 0)
                        }
                    };
                    let mut st = stats.lock();
                    match &ev {
                        FaultEvent::LinkDown { .. } => st.link_downs += 1,
                        FaultEvent::LinkUp { .. } => st.link_ups += 1,
                        FaultEvent::LinkDegrade { .. } => st.degrades += 1,
                        FaultEvent::ServerCrash { .. } => st.crashes += 1,
                        FaultEvent::ServerRestart { .. } => st.restarts += 1,
                        FaultEvent::ConnReset { .. } => st.resets += 1,
                        FaultEvent::VaultStall { .. } => st.stalls += 1,
                    }
                    st.conns_severed += severed as u64;
                    st.ledger.push((now, entry));
                }
            }),
        );
        handle
    }
}

/// Handle to a running (or finished) injector.
pub struct FaultInjector {
    stats: Arc<Mutex<FaultStats>>,
    total: usize,
}

impl FaultInjector {
    /// Snapshot of the ledger so far.
    pub fn stats(&self) -> FaultStats {
        self.stats.lock().clone()
    }

    /// Events injected so far.
    pub fn injected(&self) -> usize {
        self.stats.lock().injected()
    }

    /// True once every scheduled event has been injected.
    pub fn done(&self) -> bool {
        self.injected() == self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semplar_runtime::simulate;

    #[test]
    fn equal_seeds_build_equal_plans() {
        use semplar_netsim::Bw;
        use semplar_runtime::RealRuntime;
        let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
        let net = Network::new(rt);
        let link = net.add_link("l", Bw::mbps(10.0), Dur::ZERO);
        let build = |seed| {
            FaultPlan::new(seed)
                .link_flap(link, Dur::from_secs(1), Dur::from_millis(300), 4)
                .server_crash_at(Dur::from_secs(5), Dur::from_secs(1))
                .conn_reset_at(Dur::from_secs(8))
                .events()
                .to_vec()
        };
        assert_eq!(build(7), build(7));
        assert_ne!(build(7), build(8), "flap jitter must depend on the seed");
    }

    #[test]
    fn plan_events_carry_their_times() {
        let plan = FaultPlan::new(0)
            .vault_stall_at(Dur::from_secs(3), 1 << 20)
            .server_crash_at(Dur::from_secs(1), Dur::from_secs(2));
        let ats: Vec<Dur> = plan.events().iter().map(|e| e.at()).collect();
        assert_eq!(
            ats,
            vec![Dur::from_secs(3), Dur::from_secs(1), Dur::from_secs(3)]
        );
    }

    #[test]
    fn multi_server_plans_crash_the_named_target() {
        use semplar_srb::SrbServerCfg;

        let (crashed_a_mid, crashed_b_mid, stats) = simulate(|rt| {
            let net = Network::new(rt.clone());
            let a = SrbServer::new(net.clone(), SrbServerCfg::default());
            let b = SrbServer::new(net.clone(), SrbServerCfg::default());
            let plan =
                FaultPlan::new(3).server_crash_on(1, Dur::from_millis(100), Dur::from_millis(100));
            let inj = plan.inject_multi(&rt, &net, &[a.clone(), b.clone()]);
            rt.sleep(Dur::from_millis(150));
            let mid = (a.is_crashed(), b.is_crashed());
            rt.sleep(Dur::from_millis(100));
            assert!(!b.is_crashed(), "restarted");
            assert!(inj.done());
            (mid.0, mid.1, inj.stats())
        });
        assert!(!crashed_a_mid, "server 0 untouched");
        assert!(crashed_b_mid, "server 1 crashed");
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.restarts, 1);
        assert!(stats.ledger[0].1.contains("server 1 crash"));
        assert!(stats.ledger[1].1.contains("server 1 restart"));
    }

    #[test]
    #[should_panic(expected = "targets server 2")]
    fn out_of_range_target_panics_at_inject() {
        use semplar_srb::SrbServerCfg;
        simulate(|rt| {
            let net = Network::new(rt.clone());
            let s = SrbServer::new(net.clone(), SrbServerCfg::default());
            FaultPlan::new(0)
                .server_crash_on(2, Dur::from_millis(1), Dur::from_millis(1))
                .inject_multi(&rt, &net, &[s]);
        });
    }

    #[test]
    fn injector_replays_a_schedule_on_the_virtual_clock() {
        use semplar_netsim::Bw;
        use semplar_srb::{ConnRoute, SrbServerCfg};

        let stats = simulate(|rt| {
            let net = Network::new(rt.clone());
            let up = net.add_link("up", Bw::mbps(100.0), Dur::from_millis(10));
            let down = net.add_link("down", Bw::mbps(100.0), Dur::from_millis(10));
            let server = SrbServer::new(net.clone(), SrbServerCfg::default());
            server.mcat().add_user("u", "p");
            let route = ConnRoute {
                fwd: vec![up],
                rev: vec![down],
                send_cap: None,
                recv_cap: None,
                bus: None,
            };
            let conn = server.connect(route.clone(), "u", "p").unwrap();

            let plan = FaultPlan::new(1)
                .event(FaultEvent::LinkDown {
                    at: Dur::from_millis(100),
                    link: up,
                })
                .event(FaultEvent::LinkUp {
                    at: Dur::from_millis(200),
                    link: up,
                })
                .server_crash_at(Dur::from_millis(300), Dur::from_millis(100))
                .conn_reset_at(Dur::from_millis(500));
            let t0 = rt.now();
            let inj = plan.inject(&rt, &net, &server);

            rt.sleep(Dur::from_millis(250));
            assert_eq!(net.link_capacity(up), Bw::mbps(100.0), "restored");
            rt.sleep(Dur::from_millis(100)); // t=350: crashed
            assert!(server.is_crashed());
            assert!(conn.mk_coll("/x").unwrap_err().is_transient());
            rt.sleep(Dur::from_millis(100)); // t=450: restarted
            assert!(!server.is_crashed());
            rt.sleep(Dur::from_millis(100)); // t=550: reset done (no conns left)
            assert!(inj.done());
            (inj.stats(), t0)
        });
        let (stats, t0) = stats;
        assert_eq!(stats.link_downs, 1);
        assert_eq!(stats.link_ups, 1);
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.restarts, 1);
        assert_eq!(stats.resets, 1);
        assert_eq!(stats.conns_severed, 1, "the crash severed the live conn");
        assert_eq!(stats.ledger.len(), 5);
        // Ledger times are exactly the scheduled offsets from injection.
        assert_eq!(stats.ledger[0].0, t0 + Dur::from_millis(100));
        assert_eq!(stats.ledger[4].0, t0 + Dur::from_millis(500));
    }
}
