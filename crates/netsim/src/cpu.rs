//! Node CPU model.
//!
//! A [`Cpu`] is a pool of cores time-shared max-min fairly among runnable
//! tasks — it reuses the network's progressive-filling allocator with a
//! single "link" whose capacity is the core count and per-task caps of one
//! core. This is how the reproduction models the paper's dual-processor
//! nodes (§7.3: "running the application on dual CPU nodes will ensure that
//! the application's performance is not adversely affected by the overhead
//! associated with compression"): with two cores, a compression task and a
//! compute task proceed at full speed; with one core they time-share and the
//! compression overhead lands back on the critical path.

use std::sync::Arc;

use semplar_runtime::{Dur, Runtime};

use crate::net::{LinkId, Network};

/// A node's processor pool.
pub struct Cpu {
    net: Arc<Network>,
    link: LinkId,
    speed: f64,
}

impl Cpu {
    /// A CPU with `cores` cores, each running at `speed` relative to the
    /// reference machine (1.0 = reference). Work durations passed to
    /// [`Cpu::compute`] are expressed in reference-machine seconds.
    pub fn new(rt: Arc<dyn Runtime>, cores: f64, speed: f64) -> Arc<Cpu> {
        assert!(cores > 0.0 && speed > 0.0);
        let net = Network::new(rt);
        // Units are core-*nanoseconds* (not core-seconds) so that even
        // sub-millisecond work items sit far above the flow-completion
        // threshold of the fluid model.
        let link = net.add_link("cpu", crate::net::Bw::bps(cores * 1e9), Dur::ZERO);
        Arc::new(Cpu { net, link, speed })
    }

    /// Execute `work` reference-seconds of single-threaded computation,
    /// blocking the calling actor for the modelled duration (which stretches
    /// when more tasks than cores are runnable).
    pub fn compute(&self, work: Dur) {
        // A task can use at most one core (1e9 core-ns per second).
        self.net
            .transfer_units(&[self.link], work.as_nanos() as f64 / self.speed, Some(1e9));
    }

    /// The relative speed of this CPU.
    pub fn speed(&self) -> f64 {
        self.speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semplar_runtime::{simulate, spawn};

    #[test]
    fn single_task_runs_at_full_speed() {
        let elapsed = simulate(|rt| {
            let cpu = Cpu::new(rt.clone(), 2.0, 1.0);
            let t0 = rt.now();
            cpu.compute(Dur::from_secs(3));
            rt.now() - t0
        });
        assert!((elapsed.as_secs_f64() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn two_tasks_on_two_cores_do_not_interfere() {
        let elapsed = simulate(|rt| {
            let cpu = Cpu::new(rt.clone(), 2.0, 1.0);
            let cpu2 = cpu.clone();
            let t0 = rt.now();
            let h = spawn(&rt, "task2", move || cpu2.compute(Dur::from_secs(2)));
            cpu.compute(Dur::from_secs(2));
            h.join_unwrap();
            rt.now() - t0
        });
        assert!((elapsed.as_secs_f64() - 2.0).abs() < 1e-6, "{elapsed}");
    }

    #[test]
    fn three_tasks_on_two_cores_timeshare() {
        let elapsed = simulate(|rt| {
            let cpu = Cpu::new(rt.clone(), 2.0, 1.0);
            let t0 = rt.now();
            let mut hs = Vec::new();
            for i in 0..3 {
                let c = cpu.clone();
                hs.push(spawn(&rt, &format!("t{i}"), move || {
                    c.compute(Dur::from_secs(2));
                }));
            }
            for h in hs {
                h.join_unwrap();
            }
            rt.now() - t0
        });
        // 3 tasks × 2 core-sec = 6 core-sec on 2 cores = 3 s wall.
        assert!((elapsed.as_secs_f64() - 3.0).abs() < 1e-6, "{elapsed}");
    }

    #[test]
    fn faster_cpu_shortens_work() {
        let elapsed = simulate(|rt| {
            let cpu = Cpu::new(rt.clone(), 1.0, 2.0); // 2x reference speed
            let t0 = rt.now();
            cpu.compute(Dur::from_secs(4));
            rt.now() - t0
        });
        assert!((elapsed.as_secs_f64() - 2.0).abs() < 1e-6, "{elapsed}");
    }
}
