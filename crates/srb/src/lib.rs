//! # semplar-srb
//!
//! A from-scratch Storage Resource Broker — the remote-storage substrate the
//! SEMPLAR paper builds on (Ali & Lauria, HPDC 2006, §3.1).
//!
//! The real SRB (SDSC, v3.2.1 in the paper) gives applications a logical
//! remote filesystem: a metadata catalog (MCAT) that maps a `/collection/…`
//! namespace onto storage resources, servers that broker POSIX-like I/O to
//! their vaults, and a synchronous request/response wire protocol. This
//! crate reimplements that essence over the simulated WAN:
//!
//! * [`Mcat`] — collections, data-object records, users;
//! * [`Vault`] — the object store with a shared-disk bandwidth model;
//! * [`SrbServer`] — per-connection handler actors behind round-robin NICs;
//! * [`SrbConn`] — the client handle: a logical *session* bound to a
//!   [`Transport`] stream, exclusively (one stream per open, the paper's
//!   behaviour) or multiplexed through a [`ConnPool`].
//!
//! The protocol's cost structure (a full RTT per synchronous call, payload
//! transfer under per-stream TCP window caps, disk and NIC sharing at the
//! server) is what the paper's three asynchronous optimizations exploit.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod federation;
pub mod mcat;
pub mod membership;
pub mod pool;
pub mod proto;
pub mod qos;
pub mod retry;
pub mod server;
pub mod transport;
pub mod types;
pub mod vault;

pub use cache::{BlockCache, CacheSpec, CacheStats, Eviction};
pub use client::SrbConn;
pub use federation::{ReplStats, Replicator, ShardMap, REPL_BLOCK};
pub use mcat::Mcat;
pub use membership::{
    GovernedPair, Membership, MembershipCfg, PromotionHook, PromotionLedger, TransitionKind,
    TransitionRecord,
};
pub use pool::{ConnPool, PoolPolicy, SlotPolicy};
pub use proto::{SessionId, TenantId};
pub use qos::TenantScheduler;
pub use retry::RetryPolicy;
pub use server::{
    ConnRoute, LeaseBreak, LeaseBreakHook, ServerStats, SrbServer, SrbServerCfg, WriteHook,
};
pub use transport::{IoMeter, MeterSnapshot, Transport};
pub use types::{adler32, ObjStat, OpenFlags, Payload, SrbError, SrbResult};
pub use vault::{DiskSpec, Vault};

#[cfg(test)]
mod tests {
    use super::*;
    use semplar_netsim::{Bw, Network};
    use semplar_runtime::{simulate, spawn, Dur, Runtime};
    use std::sync::Arc;

    /// A client one 10 ms / 100 Mb/s hop away from the server.
    fn setup(rt: &Arc<dyn Runtime>) -> (Arc<SrbServer>, ConnRoute) {
        let net = Network::new(rt.clone());
        let up = net.add_link("uplink-up", Bw::mbps(100.0), Dur::from_millis(10));
        let down = net.add_link("uplink-down", Bw::mbps(100.0), Dur::from_millis(10));
        let server = SrbServer::new(net, SrbServerCfg::default());
        server.mcat().add_user("alin", "pw");
        let route = ConnRoute {
            fwd: vec![up],
            rev: vec![down],
            send_cap: None,
            recv_cap: None,
            bus: None,
        };
        (server, route)
    }

    #[test]
    fn connect_authenticates() {
        simulate(|rt| {
            let (server, route) = setup(&rt);
            assert!(server.connect(route.clone(), "alin", "pw").is_ok());
            assert!(matches!(
                server.connect(route, "alin", "bad").err(),
                Some(SrbError::PermissionDenied)
            ));
            assert_eq!(server.stats().connections, 1);
        });
    }

    #[test]
    fn full_file_lifecycle_roundtrips_data() {
        simulate(|rt| {
            let (server, route) = setup(&rt);
            let conn = server.connect(route, "alin", "pw").unwrap();
            conn.mk_coll("/home").unwrap();
            conn.create("/home/est.fasta").unwrap();
            let fd = conn.open("/home/est.fasta", OpenFlags::ReadWrite).unwrap();
            conn.write(fd, 0, Payload::bytes(b"ACGTACGT".to_vec()))
                .unwrap();
            conn.write(fd, 4, Payload::bytes(b"TTTT".to_vec())).unwrap();
            let back = conn.read(fd, 0, 8).unwrap();
            assert_eq!(back.data().unwrap(), b"ACGTTTTT");
            assert_eq!(conn.stat("/home/est.fasta").unwrap().size, 8);
            assert_eq!(conn.list("/home").unwrap(), vec!["/home/est.fasta"]);
            conn.close_fd(fd).unwrap();
            conn.unlink("/home/est.fasta").unwrap();
            conn.disconnect().unwrap();
        });
    }

    #[test]
    fn every_sync_call_pays_a_round_trip() {
        let elapsed = simulate(|rt| {
            let (server, route) = setup(&rt);
            let conn = server.connect(route, "alin", "pw").unwrap();
            conn.mk_coll("/c").unwrap();
            let t0 = rt.now();
            for i in 0..5 {
                conn.create(&format!("/c/o{i}")).unwrap();
            }
            rt.now() - t0
        });
        // 5 metadata ops × ≥20 ms RTT each; tiny payloads.
        assert!(elapsed >= Dur::from_millis(100), "elapsed {elapsed}");
        assert!(elapsed < Dur::from_millis(130), "elapsed {elapsed}");
    }

    #[test]
    fn bulk_write_is_bandwidth_dominated() {
        let elapsed = simulate(|rt| {
            let (server, route) = setup(&rt);
            let conn = server.connect(route, "alin", "pw").unwrap();
            let fd = conn.open("/data", OpenFlags::CreateRw).unwrap();
            let t0 = rt.now();
            conn.write(fd, 0, Payload::sized(10_000_000)).unwrap();
            rt.now() - t0
        });
        // 80 Mbit at 100 Mb/s = 0.8 s (+ RTT + disk). Must be near 0.85 s.
        let s = elapsed.as_secs_f64();
        assert!((0.8..1.0).contains(&s), "elapsed {elapsed}");
    }

    #[test]
    fn per_stream_window_cap_limits_throughput() {
        let elapsed = simulate(|rt| {
            let net = Network::new(rt.clone());
            let up = net.add_link("up", Bw::mbps(100.0), Dur::ZERO);
            let down = net.add_link("down", Bw::mbps(100.0), Dur::ZERO);
            let server = SrbServer::new(net, SrbServerCfg::default());
            server.mcat().add_user("u", "p");
            let route = ConnRoute {
                fwd: vec![up],
                rev: vec![down],
                send_cap: Some(Bw::mbps(8.0)),
                recv_cap: Some(Bw::mbps(8.0)),
                bus: None,
            };
            let conn = server.connect(route, "u", "p").unwrap();
            let fd = conn.open("/x", OpenFlags::CreateRw).unwrap();
            let t0 = rt.now();
            conn.write(fd, 0, Payload::sized(1_000_000)).unwrap();
            rt.now() - t0
        });
        // 8 Mbit at the 8 Mb/s window cap ≈ 1 s even though the link is 100.
        let s = elapsed.as_secs_f64();
        assert!((1.0..1.1).contains(&s), "elapsed {elapsed}");
    }

    #[test]
    fn two_connections_from_one_node_progress_concurrently() {
        // The §7.2 mechanism at SRB level: two window-capped streams move
        // a file section in roughly half the time of one.
        let (one, two) = simulate(|rt| {
            let net = Network::new(rt.clone());
            let up = net.add_link("up", Bw::mbps(100.0), Dur::ZERO);
            let down = net.add_link("down", Bw::mbps(100.0), Dur::ZERO);
            let server = SrbServer::new(net, SrbServerCfg::default());
            server.mcat().add_user("u", "p");
            let route = ConnRoute {
                fwd: vec![up],
                rev: vec![down],
                send_cap: Some(Bw::mbps(8.0)),
                recv_cap: Some(Bw::mbps(8.0)),
                bus: None,
            };
            // One stream, 2 MB.
            let c1 = server.connect(route.clone(), "u", "p").unwrap();
            let fd1 = c1.open("/one", OpenFlags::CreateRw).unwrap();
            let t0 = rt.now();
            c1.write(fd1, 0, Payload::sized(2_000_000)).unwrap();
            let one = rt.now() - t0;

            // Two streams, 1 MB each, concurrently.
            let c2 = server.connect(route.clone(), "u", "p").unwrap();
            let c3 = server.connect(route, "u", "p").unwrap();
            let fd2 = c2.open("/two", OpenFlags::CreateRw).unwrap();
            let fd3 = c3.open("/two", OpenFlags::CreateRw).unwrap();
            let t1 = rt.now();
            let h = spawn(&rt, "stream-b", move || {
                c3.write(fd3, 1_000_000, Payload::sized(1_000_000)).unwrap();
            });
            c2.write(fd2, 0, Payload::sized(1_000_000)).unwrap();
            h.join_unwrap();
            (one, rt.now() - t1)
        });
        let speedup = one.as_secs_f64() / two.as_secs_f64();
        assert!(
            speedup > 1.8,
            "two-stream speedup only {speedup:.2}x ({one} vs {two})"
        );
    }

    #[test]
    fn error_paths_surface_cleanly() {
        simulate(|rt| {
            let (server, route) = setup(&rt);
            let conn = server.connect(route, "alin", "pw").unwrap();
            assert!(matches!(
                conn.open("/missing", OpenFlags::Read),
                Err(SrbError::NotFound(_))
            ));
            assert!(matches!(conn.read(99, 0, 10), Err(SrbError::BadFd(99))));
            let fd = conn.open("/ro", OpenFlags::CreateRw).unwrap();
            conn.close_fd(fd).unwrap();
            assert!(matches!(
                conn.write(fd, 0, Payload::sized(1)),
                Err(SrbError::BadFd(_))
            ));
            let fd = conn.open("/ro", OpenFlags::Read).unwrap();
            assert!(matches!(
                conn.write(fd, 0, Payload::sized(1)),
                Err(SrbError::InvalidArg(_))
            ));
            conn.disconnect().unwrap();
            assert!(matches!(
                conn.stat("/ro"),
                Err(SrbError::Disconnected { .. })
            ));
        });
    }

    /// Two servers on one network, federated: replicate an object across
    /// the inter-server link and read it back from the peer (§8).
    #[test]
    fn federation_replicates_objects_to_a_peer() {
        simulate(|rt| {
            let net = Network::new(rt.clone());
            // Client ↔ primary.
            let c_up = net.add_link("c-up", Bw::mbps(100.0), Dur::from_millis(5));
            let c_down = net.add_link("c-down", Bw::mbps(100.0), Dur::from_millis(5));
            // Primary ↔ peer (a fast data-center interconnect).
            let f_up = net.add_link("fed-up", Bw::gbps(1.0), Dur::from_millis(1));
            let f_down = net.add_link("fed-down", Bw::gbps(1.0), Dur::from_millis(1));

            let primary = SrbServer::new(net.clone(), SrbServerCfg::default());
            primary.mcat().add_user("u", "p");
            let peer = SrbServer::new(
                net.clone(),
                SrbServerCfg {
                    name: "peer".into(),
                    ..SrbServerCfg::default()
                },
            );
            peer.mcat().add_user("fed-svc", "secret");
            primary.add_peer(
                "sdsc-mirror",
                peer.clone(),
                ConnRoute {
                    fwd: vec![f_up],
                    rev: vec![f_down],
                    send_cap: None,
                    recv_cap: None,
                    bus: None,
                },
                "fed-svc",
                "secret",
            );

            let conn = primary
                .connect(
                    ConnRoute {
                        fwd: vec![c_up],
                        rev: vec![c_down],
                        send_cap: None,
                        recv_cap: None,
                        bus: None,
                    },
                    "u",
                    "p",
                )
                .unwrap();
            conn.mk_coll("/proj").unwrap();
            let fd = conn.open("/proj/data", OpenFlags::CreateRw).unwrap();
            let data: Vec<u8> = (0..3_000_000u32).map(|i| (i % 253) as u8).collect();
            conn.write(fd, 0, Payload::bytes(data.clone())).unwrap();
            conn.close_fd(fd).unwrap();

            // Replicate and check the metadata.
            conn.replicate("/proj/data", "sdsc-mirror").unwrap();
            assert_eq!(conn.stat("/proj/data").unwrap().replicas, 2);

            // Unknown peers error cleanly.
            assert!(matches!(
                conn.replicate("/proj/data", "nowhere"),
                Err(SrbError::NotFound(_))
            ));
            conn.disconnect().unwrap();

            // Read the copy straight from the peer.
            let pconn = peer
                .connect(
                    ConnRoute {
                        fwd: vec![f_up],
                        rev: vec![f_down],
                        send_cap: None,
                        recv_cap: None,
                        bus: None,
                    },
                    "fed-svc",
                    "secret",
                )
                .unwrap();
            assert_eq!(pconn.stat("/proj/data").unwrap().size, data.len() as u64);
            let fd = pconn.open("/proj/data", OpenFlags::Read).unwrap();
            let back = pconn.read(fd, 0, data.len() as u64).unwrap();
            assert_eq!(back.data().unwrap(), &data[..]);
            pconn.disconnect().unwrap();
            assert_eq!(peer.stats().bytes_written, data.len() as u64);
        });
    }

    #[test]
    fn replication_charges_transfer_time() {
        let elapsed = simulate(|rt| {
            let net = Network::new(rt.clone());
            let c_up = net.add_link("c-up", Bw::gbps(1.0), Dur::ZERO);
            let c_down = net.add_link("c-down", Bw::gbps(1.0), Dur::ZERO);
            // Slow federation link: 8 Mb/s.
            let f_up = net.add_link("fed-up", Bw::mbps(8.0), Dur::from_millis(10));
            let f_down = net.add_link("fed-down", Bw::mbps(8.0), Dur::from_millis(10));
            let primary = SrbServer::new(net.clone(), SrbServerCfg::default());
            primary.mcat().add_user("u", "p");
            let peer = SrbServer::new(net.clone(), SrbServerCfg::default());
            peer.mcat().add_user("s", "s");
            primary.add_peer(
                "mirror",
                peer,
                ConnRoute {
                    fwd: vec![f_up],
                    rev: vec![f_down],
                    send_cap: None,
                    recv_cap: None,
                    bus: None,
                },
                "s",
                "s",
            );
            let conn = primary
                .connect(
                    ConnRoute {
                        fwd: vec![c_up],
                        rev: vec![c_down],
                        send_cap: None,
                        recv_cap: None,
                        bus: None,
                    },
                    "u",
                    "p",
                )
                .unwrap();
            let fd = conn.open("/big", OpenFlags::CreateRw).unwrap();
            conn.write(fd, 0, Payload::sized(1_000_000)).unwrap();
            conn.close_fd(fd).unwrap();
            let t0 = rt.now();
            conn.replicate("/big", "mirror").unwrap();
            let dt = rt.now() - t0;
            conn.disconnect().unwrap();
            dt
        });
        // 8 Mbit over the 8 Mb/s federation link ≈ 1 s (+ per-chunk RTTs).
        let s = elapsed.as_secs_f64();
        assert!((1.0..1.3).contains(&s), "replication took {elapsed}");
    }

    #[test]
    fn checksums_verify_transfers_without_reading_back() {
        simulate(|rt| {
            let (server, route) = setup(&rt);
            let conn = server.connect(route, "alin", "pw").unwrap();
            let fd = conn.open("/sum", OpenFlags::CreateRw).unwrap();
            let data = b"The quick brown fox jumps over the lazy dog".to_vec();
            conn.write(fd, 0, Payload::bytes(data.clone())).unwrap();
            let remote = conn.checksum("/sum").unwrap();
            assert_eq!(remote, types::adler32(&data));
            // Sparse objects cannot be checksummed.
            let fd2 = conn.open("/sparse", OpenFlags::CreateRw).unwrap();
            conn.write(fd2, 0, Payload::sized(100)).unwrap();
            assert!(matches!(
                conn.checksum("/sparse"),
                Err(SrbError::InvalidArg(_))
            ));
            assert!(matches!(conn.checksum("/nope"), Err(SrbError::NotFound(_))));
            conn.disconnect().unwrap();
        });
    }

    #[test]
    fn adler32_matches_reference_vectors() {
        // Classic test vectors.
        assert_eq!(types::adler32(b""), 1);
        assert_eq!(types::adler32(b"Wikipedia"), 0x11E6_0398);
        // Large input exercises the modular chunking.
        let big = vec![0xABu8; 1_000_000];
        let c = types::adler32(&big);
        assert_eq!(types::adler32(&big), c);
    }

    #[test]
    fn server_counts_traffic() {
        simulate(|rt| {
            let (server, route) = setup(&rt);
            let conn = server.connect(route, "alin", "pw").unwrap();
            let fd = conn.open("/t", OpenFlags::CreateRw).unwrap();
            conn.write(fd, 0, Payload::sized(1000)).unwrap();
            conn.read(fd, 0, 400).unwrap();
            let st = server.stats();
            assert_eq!(st.bytes_written, 1000);
            assert_eq!(st.bytes_read, 400);
            assert!(st.requests >= 3);
        });
    }

    #[test]
    fn crash_severs_connections_and_restart_preserves_state() {
        simulate(|rt| {
            let (server, route) = setup(&rt);
            let conn = server.connect(route.clone(), "alin", "pw").unwrap();
            let fd = conn.open("/f", OpenFlags::CreateRw).unwrap();
            conn.write(fd, 0, Payload::bytes(vec![7; 100])).unwrap();
            assert_eq!(conn.acked_bytes(), 100);

            assert_eq!(server.crash(), 1);
            assert!(server.is_crashed());
            // The live handle errors and reports how far it got.
            assert_eq!(
                conn.write(fd, 100, Payload::sized(10)).unwrap_err(),
                SrbError::Disconnected { acked: 100 }
            );
            // New connections are refused while down, transiently.
            let refused = server.connect(route.clone(), "alin", "pw").err().unwrap();
            assert!(refused.is_transient(), "{refused}");

            server.restart();
            // MCAT and vault state survived the crash.
            let conn2 = server.connect(route, "alin", "pw").unwrap();
            let fd2 = conn2.open("/f", OpenFlags::Read).unwrap();
            assert_eq!(
                conn2.read(fd2, 0, 100).unwrap().data().unwrap(),
                &[7u8; 100][..]
            );
            conn2.disconnect().unwrap();
        });
    }

    #[test]
    fn crash_mid_transfer_delivers_the_error_to_the_blocked_caller() {
        simulate(|rt| {
            let (server, route) = setup(&rt);
            let conn = server.connect(route, "alin", "pw").unwrap();
            let fd = conn.open("/big", OpenFlags::CreateRw).unwrap();
            let s2 = server.clone();
            let rt2 = rt.clone();
            let h = spawn(&rt, "chaos", move || {
                rt2.sleep(Dur::from_millis(1));
                s2.crash();
            });
            // 64 MiB needs seconds on this link; the crash at 1 ms cuts it.
            let err = conn.write(fd, 0, Payload::sized(64 << 20)).unwrap_err();
            assert!(err.is_transient(), "{err}");
            h.join_unwrap();
        });
    }

    #[test]
    fn connection_reset_cuts_streams_without_downing_the_server() {
        simulate(|rt| {
            let (server, route) = setup(&rt);
            let conn = server.connect(route.clone(), "alin", "pw").unwrap();
            assert_eq!(server.reset_all_connections(), 1);
            assert!(conn.mk_coll("/x").unwrap_err().is_transient());
            // The server itself is fine: new connections work at once.
            let conn2 = server.connect(route, "alin", "pw").unwrap();
            conn2.mk_coll("/y").unwrap();
            conn2.disconnect().unwrap();
        });
    }

    fn shared_pool(server: &Arc<SrbServer>, max_streams: usize) -> Arc<ConnPool> {
        ConnPool::new(
            server.clone(),
            "alin",
            "pw",
            PoolPolicy::Shared {
                max_streams,
                max_inflight: 8,
            },
            RetryPolicy::none(),
        )
    }

    #[test]
    fn sessions_on_a_shared_stream_have_isolated_fd_namespaces() {
        simulate(|rt| {
            let (server, route) = setup(&rt);
            let pool = shared_pool(&server, 1);
            let a = pool.session(&route, None).unwrap();
            let b = pool.session(&route, None).unwrap();
            // Both sessions ride ONE stream (one handler at the server)...
            assert_eq!(server.stats().connections, 1);
            assert_eq!(server.live_conn_count(), 1);
            a.mk_coll("/iso").unwrap();
            // ...yet each gets its own fd table: both first opens yield fd 3.
            let fd_a = a.open("/iso/a", OpenFlags::CreateRw).unwrap();
            let fd_b = b.open("/iso/b", OpenFlags::CreateRw).unwrap();
            assert_eq!(fd_a, 3);
            assert_eq!(fd_b, 3);
            a.write(fd_a, 0, Payload::bytes(b"AAAA".to_vec())).unwrap();
            b.write(fd_b, 0, Payload::bytes(b"BB".to_vec())).unwrap();
            // The same number names different objects in each namespace.
            assert_eq!(a.read(fd_a, 0, 8).unwrap().data().unwrap(), b"AAAA");
            assert_eq!(b.read(fd_b, 0, 8).unwrap().data().unwrap(), b"BB");
            // Closing A's fd 3 must not disturb B's fd 3.
            a.close_fd(fd_a).unwrap();
            assert!(matches!(a.read(fd_a, 0, 1), Err(SrbError::BadFd(3))));
            assert_eq!(b.read(fd_b, 0, 8).unwrap().data().unwrap(), b"BB");
            // Ending session A leaves the stream (and B) fully usable.
            a.disconnect().unwrap();
            assert_eq!(b.stat("/iso/b").unwrap().size, 2);
            assert_eq!(server.live_conn_count(), 1);
            b.disconnect().unwrap();
        });
    }

    #[test]
    fn shared_pool_caps_streams_and_pins_land_on_distinct_slots() {
        simulate(|rt| {
            let (server, route) = setup(&rt);
            let pool = shared_pool(&server, 2);
            // Pins 0/1 land on distinct slots; pin 2 wraps onto slot 0.
            let s0 = pool.session(&route, Some(0)).unwrap();
            let s1 = pool.session(&route, Some(1)).unwrap();
            let s2 = pool.session(&route, Some(2)).unwrap();
            assert_eq!(server.stats().connections, 2);
            assert_eq!(pool.live_streams(), 2);
            // All three sessions work concurrently over the two streams.
            s0.mk_coll("/p").unwrap();
            let h: Vec<_> = [(&s0, "/p/x"), (&s1, "/p/y"), (&s2, "/p/z")]
                .into_iter()
                .map(|(s, path)| {
                    let fd = s.open(path, OpenFlags::CreateRw).unwrap();
                    s.write(fd, 0, Payload::sized(100_000)).unwrap();
                    s.close_fd(fd).unwrap();
                    path
                })
                .collect();
            for path in h {
                assert_eq!(s0.stat(path).unwrap().size, 100_000);
            }
        });
    }

    #[test]
    fn one_flap_on_a_shared_stream_triggers_one_redial() {
        simulate(|rt| {
            let (server, route) = setup(&rt);
            let pool = shared_pool(&server, 1);
            let a = pool.session(&route, None).unwrap();
            let b = pool.session(&route, None).unwrap();
            a.mk_coll("/flap").unwrap();
            assert_eq!(server.stats().connections, 1);
            assert_eq!(server.reset_all_connections(), 1);
            assert!(a.mk_coll("/flap/a").unwrap_err().is_transient());
            assert!(b.stat("/flap").unwrap_err().is_transient());
            // First reconnect dials a fresh stream...
            let (a2, shared_a) = pool.reconnect(&route, &a).unwrap();
            assert!(!shared_a);
            // ...the second piggybacks on it: still 2 connections total.
            let (b2, shared_b) = pool.reconnect(&route, &b).unwrap();
            assert!(shared_b);
            assert_eq!(server.stats().connections, 2);
            a2.mk_coll("/flap/a").unwrap();
            assert_eq!(b2.list("/flap").unwrap(), vec!["/flap/a"]);
        });
    }

    #[test]
    fn multiplexed_exchanges_share_one_stream_concurrently() {
        simulate(|rt| {
            let (server, route) = setup(&rt);
            let pool = shared_pool(&server, 1);
            let conns: Vec<_> = (0..4)
                .map(|_| Arc::new(pool.session(&route, None).unwrap()))
                .collect();
            conns[0].mk_coll("/mux").unwrap();
            let t0 = rt.now();
            let handles: Vec<_> = conns
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let c = c.clone();
                    spawn(&rt, &format!("mux-client-{i}"), move || {
                        let fd = c.open(&format!("/mux/f{i}"), OpenFlags::CreateRw).unwrap();
                        c.write(fd, 0, Payload::sized(1_000_000)).unwrap();
                        c.close_fd(fd).unwrap();
                    })
                })
                .collect();
            for h in handles {
                h.join_unwrap();
            }
            let elapsed = rt.now() - t0;
            // Four 1 MB writes over one 100 Mb/s stream: the payloads must
            // serialize (~320 ms of wire time), but the small open/close
            // round trips overlap thanks to multiplexing — the whole thing
            // fits well under four back-to-back sequential clients would
            // take, while still reflecting one shared wire.
            assert_eq!(server.stats().connections, 1);
            assert!(
                elapsed < Dur::from_millis(700),
                "multiplexed batch took {elapsed:?}"
            );
            for i in 0..4 {
                assert_eq!(
                    conns[0].stat(&format!("/mux/f{i}")).unwrap().size,
                    1_000_000
                );
            }
        });
    }
}
