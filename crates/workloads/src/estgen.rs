//! Synthetic EST (expressed sequence tag) data.
//!
//! The paper's MPI-BLAST benchmark searches "a subset of the sequences of
//! all human ESTs in GenBank at UCSC (687,158 sequences for a total size of
//! 256 MB)", and the compression experiment reads "a 100 MB text file
//! consisting of nucleotide sequences for the human EST" (§6, §7.3). We
//! cannot ship GenBank, so this module generates FASTA-formatted nucleotide
//! text with the statistical property that matters for the experiments:
//! **LZ compressibility around 2:1**, achieved with a mixture of fresh
//! random sequence, repeated motifs (biological sequence is full of
//! repeats), and poly-A tails (ESTs are mRNA-derived and poly-adenylated).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BASES: [u8; 4] = *b"ACGT";

/// Configuration for the generator.
#[derive(Clone, Debug)]
pub struct EstGenConfig {
    /// Mean sequence length between FASTA headers.
    pub mean_seq_len: usize,
    /// Probability that the next emitted chunk is a repeat of earlier
    /// material (the knob controlling compressibility).
    pub repeat_prob: f64,
    /// Repeated-chunk length range.
    pub repeat_len: (usize, usize),
}

impl Default for EstGenConfig {
    fn default() -> Self {
        EstGenConfig {
            mean_seq_len: 420, // typical EST read length
            repeat_prob: 0.58,
            repeat_len: (40, 200),
        }
    }
}

/// Generate `bytes` of FASTA-formatted EST-like text, deterministically
/// from `seed`.
pub fn generate(bytes: usize, seed: u64, cfg: &EstGenConfig) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(bytes + 128);
    let mut seq_no = 0usize;
    let mut since_header = usize::MAX; // force an initial header
    while out.len() < bytes {
        if since_header >= cfg.mean_seq_len {
            seq_no += 1;
            out.extend_from_slice(format!(">EST{seq_no:07} synthetic human est\n").as_bytes());
            since_header = 0;
            // Poly-A tail on the way out of the previous record shows up at
            // the start of some reads instead; emit one occasionally.
            if rng.gen_bool(0.3) {
                let n = rng.gen_range(8usize..30);
                out.extend(std::iter::repeat_n(b'A', n));
                since_header += n;
            }
            continue;
        }
        if rng.gen_bool(cfg.repeat_prob) && out.len() > cfg.repeat_len.1 + 2 {
            // Copy a chunk from recent history (an Alu-like repeat).
            let len = rng.gen_range(cfg.repeat_len.0..=cfg.repeat_len.1);
            let window = 6000.min(out.len() - len);
            let start = out.len() - len - rng.gen_range(0..window.max(1));
            let chunk: Vec<u8> = out[start..start + len].to_vec();
            // Strip newlines/header chars from the copied region.
            let clean: Vec<u8> = chunk.into_iter().filter(|b| BASES.contains(b)).collect();
            since_header += clean.len();
            out.extend(clean);
        } else {
            // Fresh random sequence with a mildly skewed base composition
            // (GC content ~42%, like human ESTs).
            let len = rng.gen_range(20usize..120);
            for _ in 0..len {
                let r: f64 = rng.gen();
                let b = if r < 0.29 {
                    b'A'
                } else if r < 0.58 {
                    b'T'
                } else if r < 0.79 {
                    b'G'
                } else {
                    b'C'
                };
                out.push(b);
            }
            since_header += len;
        }
        // Wrap lines FASTA-style.
        if since_header % 60 < 3 {
            out.push(b'\n');
        }
    }
    out.truncate(bytes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use semplar_compress::Codec;

    #[test]
    fn deterministic_for_a_seed() {
        let a = generate(10_000, 7, &EstGenConfig::default());
        let b = generate(10_000, 7, &EstGenConfig::default());
        let c = generate(10_000, 8, &EstGenConfig::default());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 10_000);
    }

    #[test]
    fn looks_like_fasta_nucleotides() {
        let data = generate(50_000, 1, &EstGenConfig::default());
        assert!(data.starts_with(b">EST"));
        let headers = data.iter().filter(|&&b| b == b'>').count();
        assert!(headers > 20, "only {headers} records in 50 KB");
        let acgt = data.iter().filter(|b| BASES.contains(b)).count();
        assert!(
            acgt as f64 / data.len() as f64 > 0.85,
            "not mostly nucleotides"
        );
    }

    /// The property the §7.3 experiment depends on: LZ-class compression
    /// lands near 2:1 on this data (paper-era LZO on EST text).
    #[test]
    fn lzf_ratio_is_near_one_half() {
        let data = generate(2 << 20, 42, &EstGenConfig::default());
        let ratio = semplar_compress::Lzf.ratio(&data);
        assert!(
            (0.40..=0.62).contains(&ratio),
            "LZF ratio {ratio:.3} outside the EST calibration band"
        );
    }
}
