//! The ROMIO `perf` benchmark (paper §6, Fig. 8).
//!
//! "Each process writes a data array to a shared file at a fixed location
//! using `MPI_File_write`. The data is then read back using
//! `MPI_File_read`. The location from which a process reads and writes data
//! is determined by its rank. The benchmark uses individual file pointers
//! and non-collective calls." We run it with one or two TCP streams per
//! node (§7.2): the two-stream variant opens the shared file twice per node
//! and drives both descriptors with asynchronous calls.

use std::sync::Arc;

use semplar::{OpenFlags, Payload, StripeUnit, StripedFile};
use semplar_clusters::Testbed;
use semplar_mpi::run_world;

/// Parameters for one perf run.
#[derive(Clone, Copy, Debug)]
pub struct PerfParams {
    /// Array size written and read per process (paper: 32 MB).
    pub bytes_per_proc: u64,
    /// TCP streams per node (1 or 2 in the paper).
    pub streams: usize,
}

impl Default for PerfParams {
    fn default() -> Self {
        PerfParams {
            bytes_per_proc: 32 << 20,
            streams: 1,
        }
    }
}

/// Aggregate bandwidths from one perf run.
#[derive(Clone, Copy, Debug)]
pub struct PerfReport {
    /// Processes.
    pub procs: usize,
    /// Streams per node.
    pub streams: usize,
    /// Aggregate write bandwidth, Mb/s (the paper's unit).
    pub write_mbps: f64,
    /// Aggregate read bandwidth, Mb/s.
    pub read_mbps: f64,
}

/// Run perf with `n` processes on `tb`.
pub fn run_perf(tb: &Arc<Testbed>, n: usize, params: PerfParams) -> PerfReport {
    assert!(n <= tb.nodes(), "testbed has only {} nodes", tb.nodes());
    let tb2 = tb.clone();
    let phases = run_world(tb.topo.clone(), n, move |r| {
        let rt = r.runtime().clone();
        let fs = tb2.srbfs(r.rank);
        let f = StripedFile::open(
            &rt,
            &fs,
            "/perf-shared",
            OpenFlags::CreateRw,
            params.streams,
            StripeUnit::Even,
        )
        .expect("open perf file");
        let off = r.rank as u64 * params.bytes_per_proc;

        r.barrier();
        let w0 = rt.now();
        f.write_at(off, Payload::sized(params.bytes_per_proc))
            .expect("perf write");
        r.barrier();
        let w1 = rt.now();

        let r0 = rt.now();
        let got = f.read_at(off, params.bytes_per_proc).expect("perf read");
        assert_eq!(got.len(), params.bytes_per_proc, "short perf read");
        r.barrier();
        let r1 = rt.now();

        f.close().expect("close perf file");
        ((w1 - w0).as_secs_f64(), (r1 - r0).as_secs_f64())
    });

    // All ranks leave each barrier together; the phase time is the max.
    let wt = phases.iter().map(|p| p.0).fold(0.0f64, f64::max);
    let rdt = phases.iter().map(|p| p.1).fold(0.0f64, f64::max);
    let total_bits = n as f64 * params.bytes_per_proc as f64 * 8.0;
    PerfReport {
        procs: n,
        streams: params.streams,
        write_mbps: total_bits / wt / 1e6,
        read_mbps: total_bits / rdt / 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semplar_clusters::{das2, tg_ncsa, Testbed};
    use semplar_runtime::simulate;

    fn small(bytes: u64, streams: usize) -> PerfParams {
        PerfParams {
            bytes_per_proc: bytes,
            streams,
        }
    }

    #[test]
    fn single_das2_node_is_window_limited() {
        let rep = simulate(|rt| {
            let tb = Testbed::new(rt, das2(), 1);
            run_perf(&tb, 1, small(4 << 20, 1))
        });
        // Write cap 2.88 Mb/s; allow protocol overheads.
        assert!(
            (2.2..=2.95).contains(&rep.write_mbps),
            "write {:.2} Mb/s",
            rep.write_mbps
        );
        // Read cap is half the write cap (32 KiB window).
        assert!(rep.read_mbps < rep.write_mbps, "{rep:?}");
    }

    #[test]
    fn two_streams_nearly_double_das2_bandwidth() {
        let (one, two) = simulate(|rt| {
            let tb = Testbed::new(rt, das2(), 4);
            (
                run_perf(&tb, 4, small(4 << 20, 1)),
                run_perf(&tb, 4, small(4 << 20, 2)),
            )
        });
        let wgain = two.write_mbps / one.write_mbps;
        let rgain = two.read_mbps / one.read_mbps;
        assert!(wgain > 1.7, "write gain {wgain:.2}");
        assert!(rgain > 1.7, "read gain {rgain:.2}");
    }

    #[test]
    fn aggregate_bandwidth_scales_with_procs_until_shared_path() {
        let (p2, p8) = simulate(|rt| {
            let tb = Testbed::new(rt, tg_ncsa(), 8);
            (
                run_perf(&tb, 2, small(4 << 20, 1)),
                run_perf(&tb, 8, small(4 << 20, 1)),
            )
        });
        assert!(
            p8.write_mbps > 3.0 * p2.write_mbps,
            "p2 {:.1} vs p8 {:.1}",
            p2.write_mbps,
            p8.write_mbps
        );
    }
}
