//! Event-driven client swarms: the 10⁵-client scale workload.
//!
//! The paper's SEMPLAR client is a thread per connection, and so was every
//! workload in this repo — which caps `fig_scale` around 4×10³ clients
//! (each simulated client is a real OS thread under the virtual-time
//! engine). This module drives the same open → write/read-loop → close
//! session as a poll-style [`Task`] state machine instead: submissions go
//! through the pooled transport's asynchronous path
//! ([`SrbConn::submit`]), the response demultiplexer wakes the actor, and
//! an idle session costs a few hundred bytes rather than a thread stack.
//!
//! [`run_swarm`] runs the identical workload in either mode
//! ([`SwarmMode::Threads`] or [`SwarmMode::Tasks`]); with one pool slot
//! per client the per-connection request traces and the server-side
//! object checksums are bit-identical between the two, which is how the
//! equivalence tests pin the refactor.
//!
//! Arrivals are open-loop and heavy-tailed ([`heavy_tailed_arrivals`]):
//! an exponential body with a bounded Pareto tail, the burst-and-lull
//! shape of real multi-user storage front ends, spread across a weighted
//! [`TenantMix`].

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use semplar_clusters::{Testbed, PASSWORD, USER};
use semplar_runtime::{
    spawn, Dur, Runtime, Task, TaskCtx, TaskExecutor, TaskStats, TaskStep, Waker,
};
use semplar_srb::proto::{Request, Response};
use semplar_srb::{
    ConnPool, OpenFlags, Payload, PoolPolicy, RetryPolicy, SrbConn, SrbResult, TenantId,
};

/// Open-loop, heavy-tailed arrival offsets for `n` clients, deterministic
/// from `seed`. Gaps are drawn from an exponential body (90 %) with a
/// bounded Pareto tail (10 %, α = 1.5, capped at 50× the nominal gap) —
/// mostly steady trickle, occasionally a long lull then a burst. Offsets
/// are strictly increasing (ties broken by at least 1 ns) so no two
/// clients share an arrival instant.
pub fn heavy_tailed_arrivals(seed: u64, n: usize, mean_gap: Dur) -> Vec<Dur> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_a221);
    let mean = (mean_gap.as_nanos() as f64).max(1.0);
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            let u = u.clamp(1e-12, 1.0 - 1e-12);
            let gap = if rng.gen_bool(0.9) {
                // Exponential body around 0.6× the nominal gap.
                -(1.0 - u).ln() * mean * 0.6
            } else {
                // Pareto tail: x_m / u^(1/α), α = 1.5, capped at 50× mean.
                (mean * 0.6 / u.powf(1.0 / 1.5)).min(mean * 50.0)
            };
            t += gap.max(1.0);
            Dur::from_nanos(t as u64)
        })
        .collect()
}

/// A weighted tenant mix: client `i` is assigned a tenant by weighted
/// round-robin over the cumulative weights, so the assignment is a pure
/// function of the index (no RNG state shared with arrivals).
#[derive(Clone, Debug)]
pub struct TenantMix {
    weights: Vec<(TenantId, u32)>,
    total: u32,
}

impl TenantMix {
    /// A mix from `(tenant, weight)` pairs; weights are relative shares.
    pub fn new(weights: &[(TenantId, u32)]) -> TenantMix {
        let weights: Vec<_> = weights.iter().copied().filter(|&(_, w)| w > 0).collect();
        let total = weights.iter().map(|&(_, w)| w).sum::<u32>().max(1);
        TenantMix { weights, total }
    }

    /// Every client in one tenant.
    pub fn single(tenant: TenantId) -> TenantMix {
        TenantMix::new(&[(tenant, 1)])
    }

    /// The tenant of client `i`.
    pub fn assign(&self, i: usize) -> TenantId {
        let slot = (i as u64 % self.total as u64) as u32;
        let mut acc = 0;
        for &(t, w) in &self.weights {
            acc += w;
            if slot < acc {
                return t;
            }
        }
        TenantId::default()
    }

    /// The distinct tenants in this mix, in declaration order.
    pub fn tenants(&self) -> Vec<TenantId> {
        self.weights.iter().map(|&(t, _)| t).collect()
    }
}

/// The per-session operation shape: how many sequential writes and reads,
/// and how large each is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpShape {
    /// Sequential writes per session (offset `k · bytes_per_op`).
    pub writes: u32,
    /// Sequential reads per session after the writes.
    pub reads: u32,
    /// Payload bytes per operation.
    pub bytes_per_op: u64,
}

impl OpShape {
    fn total_ops(self) -> u32 {
        self.writes + self.reads
    }
}

/// Which execution substrate carries the clients.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwarmMode {
    /// One blocking actor (OS thread) per client — the legacy path.
    Threads,
    /// Event-driven [`Task`]s multiplexed on one executor.
    Tasks,
}

/// Access skew across the swarm's objects: instead of every client owning
/// its private object (`{coll}/c{i}`), clients target a shared hot set of
/// `hot_objects` objects (`{coll}/h{j}`), with object `j` drawn from a
/// Zipf(`theta`) distribution by a deterministic per-client hash. `theta
/// = 0.0` spreads clients uniformly over the hot set; larger values
/// concentrate them on the lowest ranks (classic 0.99 ≈ "80/20"). The
/// knob that gives the block cache and read leases a hot set to hit.
#[derive(Clone, Copy, Debug)]
pub struct AccessSkew {
    /// Zipf exponent; 0 = uniform over the hot set.
    pub theta: f64,
    /// Number of distinct objects the swarm touches.
    pub hot_objects: usize,
}

/// splitmix64: deterministic 64-bit mix for per-client draws.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// The Zipf rank (0-based) client `client` lands on: inverse-CDF over the
/// normalized harmonic weights, driven by a hash of `(seed, client)`.
fn zipf_rank(seed: u64, client: u64, n: usize, theta: f64) -> usize {
    debug_assert!(n > 0);
    let u =
        (mix64(seed ^ client.wrapping_mul(0x9E3779B97F4A7C15)) >> 11) as f64 / (1u64 << 53) as f64;
    let h: f64 = (1..=n).map(|k| (k as f64).powf(-theta)).sum();
    let mut acc = 0.0;
    for k in 1..=n {
        acc += (k as f64).powf(-theta) / h;
        if u <= acc {
            return k - 1;
        }
    }
    n - 1
}

/// The object path client `i` opens: its private `{coll}/c{i}` without
/// skew (bit-identical to the pre-skew swarm), a Zipf-ranked member of the
/// shared hot set with it.
fn path_for(p: &SwarmParams, client: usize) -> String {
    match p.skew {
        None => format!("{}/c{}", p.coll, client),
        Some(s) => format!(
            "{}/h{}",
            p.coll,
            zipf_rank(p.seed, client as u64, s.hot_objects.max(1), s.theta)
        ),
    }
}

/// Parameters for one swarm run.
#[derive(Clone, Debug)]
pub struct SwarmParams {
    /// Total client sessions.
    pub clients: usize,
    /// Pooled streams per node (`PoolPolicy::Shared`).
    pub streams_per_node: usize,
    /// Concurrent tagged exchanges per stream.
    pub inflight_per_stream: usize,
    /// Tenant assignment across clients.
    pub mix: TenantMix,
    /// Sequential writes per session (offset `k · bytes_per_op`).
    pub writes: u32,
    /// Sequential reads per session after the writes.
    pub reads: u32,
    /// Payload bytes per operation.
    pub bytes_per_op: u64,
    /// Nominal inter-arrival gap (see [`heavy_tailed_arrivals`]).
    pub mean_gap: Dur,
    /// Modelled client think time before each data operation.
    pub think: Dur,
    /// Seed for the arrival process.
    pub seed: u64,
    /// Carry real (checksummable) bytes instead of size-only payloads.
    /// Keep `false` at 10⁵ clients; the equivalence tests set it.
    pub real_payload: bool,
    /// Execution substrate.
    pub mode: SwarmMode,
    /// Collection the sessions' objects live under.
    pub coll: String,
    /// Optional abusive-tenant override: sessions of this tenant issue the
    /// given shape instead of the baseline `writes`/`reads`/`bytes_per_op`.
    pub abuse: Option<(TenantId, OpShape)>,
    /// Give each tenant its own pooled streams per node instead of
    /// interleaving all tenants on one pool. The server handles one
    /// request per connection at a time, so tenants sharing a stream share
    /// its head-of-line — partitioning isolates that, as separate user
    /// communities dialing their own connections would.
    pub per_tenant_streams: bool,
    /// Optional access skew: route clients onto a shared Zipf-weighted hot
    /// set instead of private per-client objects. `None` (the default)
    /// leaves the request stream bit-identical to the pre-skew swarm.
    pub skew: Option<AccessSkew>,
}

impl SwarmParams {
    /// A small, fast default: 64 clients, one tenant, 2 writes + 1 read
    /// of 64 KiB each, task mode.
    pub fn quick() -> SwarmParams {
        SwarmParams {
            clients: 64,
            streams_per_node: 4,
            inflight_per_stream: 8,
            mix: TenantMix::single(TenantId(1)),
            writes: 2,
            reads: 1,
            bytes_per_op: 64 << 10,
            mean_gap: Dur::from_micros(500),
            think: Dur::ZERO,
            seed: 42,
            real_payload: false,
            mode: SwarmMode::Tasks,
            coll: "/swarm".into(),
            abuse: None,
            per_tenant_streams: false,
            skew: None,
        }
    }

    /// The operation shape `tenant`'s sessions run.
    pub fn shape_for(&self, tenant: TenantId) -> OpShape {
        match self.abuse {
            Some((t, shape)) if t == tenant => shape,
            _ => OpShape {
                writes: self.writes,
                reads: self.reads,
                bytes_per_op: self.bytes_per_op,
            },
        }
    }
}

/// What one client session did.
#[derive(Clone, Copy, Debug)]
pub struct SessionOutcome {
    /// The session's tenant tag.
    pub tenant: TenantId,
    /// Virtual arrival time, ns.
    pub arrival_ns: u64,
    /// Virtual completion time, ns.
    pub done_ns: u64,
    /// Payload bytes the server acknowledged for this session.
    pub payload_bytes: u64,
    /// False if any operation returned an error.
    pub ok: bool,
}

impl SessionOutcome {
    /// The session's application goodput, bits per second of its lifetime.
    pub fn goodput_bps(&self) -> f64 {
        let secs = (self.done_ns.saturating_sub(self.arrival_ns)) as f64 / 1e9;
        if secs <= 0.0 {
            return 0.0;
        }
        self.payload_bytes as f64 * 8.0 / secs
    }
}

/// Result of one swarm run.
#[derive(Debug)]
pub struct SwarmReport {
    /// Per-client outcomes, indexed by client id (deterministic order).
    pub outcomes: Vec<SessionOutcome>,
    /// Virtual seconds from first arrival to last completion.
    pub secs: f64,
    /// Executor counters (zeroes in thread mode).
    pub task_stats: TaskStats,
}

impl SwarmReport {
    /// Sessions that completed fully.
    pub fn completed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.ok).count()
    }

    /// Total acknowledged payload bytes.
    pub fn payload_bytes(&self) -> u64 {
        self.outcomes.iter().map(|o| o.payload_bytes).sum()
    }

    /// Per-tenant p99 session goodput (the slowest 1 % boundary), bits/s,
    /// keyed in tenant order. Tenants with no sessions are omitted.
    pub fn p99_goodput_by_tenant(&self) -> Vec<(TenantId, f64)> {
        let mut by_tenant: std::collections::BTreeMap<TenantId, Vec<f64>> = Default::default();
        for o in &self.outcomes {
            by_tenant.entry(o.tenant).or_default().push(o.goodput_bps());
        }
        by_tenant
            .into_iter()
            .map(|(t, mut v)| {
                v.sort_by(|a, b| a.partial_cmp(b).expect("finite goodput"));
                let idx = (v.len().saturating_sub(1)) / 100; // 1st percentile from the bottom
                (t, v[idx])
            })
            .collect()
    }
}

/// The deterministic per-client payload pattern (checksum fixture).
fn client_bytes(client: usize, op: u32, len: u64) -> Vec<u8> {
    (0..len)
        .map(|k| ((client as u64 * 131 + op as u64 * 31 + k) % 251) as u8)
        .collect()
}

fn payload_for(p: &SwarmParams, shape: OpShape, client: usize, op: u32) -> Payload {
    if p.real_payload {
        Payload::bytes(client_bytes(client, op, shape.bytes_per_op))
    } else {
        Payload::sized(shape.bytes_per_op)
    }
}

/// Data op `op_idx` of the session: the *sequence* of requests is defined
/// once here so thread and task clients cannot drift.
fn op_request(p: &SwarmParams, shape: OpShape, client: usize, op_idx: u32, fd: u32) -> Request {
    if op_idx < shape.writes {
        Request::Write {
            fd,
            offset: op_idx as u64 * shape.bytes_per_op,
            payload: payload_for(p, shape, client, op_idx),
        }
    } else {
        let k = (op_idx - shape.writes) as u64;
        Request::Read {
            fd,
            offset: (k % shape.writes.max(1) as u64) * shape.bytes_per_op,
            len: shape.bytes_per_op,
        }
    }
}

enum ActorState {
    /// Sleeping out the arrival offset.
    Arriving,
    /// Open submitted, waiting for the fd.
    Opening,
    /// Think-time sleep before data op `k`.
    Thinking(u32),
    /// Data op `k` submitted.
    InOp(u32),
    /// Close submitted.
    Closing,
    /// EndSession submitted.
    Ending,
}

/// One event-driven client session.
struct SessionActor {
    params: Arc<SwarmParams>,
    shape: OpShape,
    client: usize,
    conn: Arc<SrbConn>,
    path: String,
    arrival: Dur,
    arrival_ns: u64,
    state: ActorState,
    fd: u32,
    ok: bool,
    /// Completion mailbox filled by the transport demultiplexer.
    slot: Arc<Mutex<Option<SrbResult<Response>>>>,
    outcomes: Arc<Mutex<Vec<Option<SessionOutcome>>>>,
}

impl SessionActor {
    fn submit(&self, req: Request, waker: &Waker) {
        let slot = self.slot.clone();
        let w = waker.clone();
        self.conn
            .submit(
                req,
                Box::new(move |r| {
                    *slot.lock() = Some(r);
                    w.wake();
                }),
            )
            .expect("submit on pooled transport");
    }

    /// Take the mailbox; `None` means a spurious wake (park again).
    fn take(&self) -> Option<SrbResult<Response>> {
        self.slot.lock().take()
    }

    fn total_ops(&self) -> u32 {
        self.shape.total_ops()
    }

    fn finish(&mut self, cx: &TaskCtx<'_>) -> TaskStep {
        self.outcomes.lock()[self.client] = Some(SessionOutcome {
            tenant: self.conn.tenant(),
            arrival_ns: self.arrival_ns,
            done_ns: cx.now.as_nanos(),
            payload_bytes: self.conn.acked_bytes(),
            ok: self.ok,
        });
        TaskStep::Done
    }

    /// Advance past a completed op `k`: think-sleep or submit the next
    /// stage. Returns the step to yield.
    fn next_stage(&mut self, k: u32, cx: &mut TaskCtx<'_>) -> TaskStep {
        if k < self.total_ops() {
            if self.params.think > Dur::ZERO {
                self.state = ActorState::Thinking(k);
                return TaskStep::Sleep(self.params.think);
            }
            self.state = ActorState::InOp(k);
            self.submit(
                op_request(&self.params, self.shape, self.client, k, self.fd),
                &cx.waker,
            );
            return TaskStep::Park;
        }
        self.state = ActorState::Closing;
        self.submit(Request::Close(self.fd), &cx.waker);
        TaskStep::Park
    }
}

impl Task for SessionActor {
    fn poll(&mut self, cx: &mut TaskCtx<'_>) -> TaskStep {
        match self.state {
            ActorState::Arriving => {
                if self.arrival > Dur::ZERO {
                    let d = self.arrival;
                    self.arrival = Dur::ZERO;
                    return TaskStep::Sleep(d);
                }
                self.arrival_ns = cx.now.as_nanos();
                self.state = ActorState::Opening;
                self.submit(
                    Request::Open(self.path.clone(), OpenFlags::CreateRw),
                    &cx.waker,
                );
                TaskStep::Park
            }
            ActorState::Opening => match self.take() {
                None => TaskStep::Park,
                Some(Ok(Response::Fd(fd))) => {
                    self.fd = fd;
                    self.next_stage(0, cx)
                }
                Some(_) => {
                    self.ok = false;
                    self.finish(cx)
                }
            },
            ActorState::Thinking(k) => {
                self.state = ActorState::InOp(k);
                self.submit(
                    op_request(&self.params, self.shape, self.client, k, self.fd),
                    &cx.waker,
                );
                TaskStep::Park
            }
            ActorState::InOp(k) => match self.take() {
                None => TaskStep::Park,
                Some(Ok(Response::Written(_) | Response::Data(_))) => self.next_stage(k + 1, cx),
                Some(_) => {
                    self.ok = false;
                    self.finish(cx)
                }
            },
            ActorState::Closing => match self.take() {
                None => TaskStep::Park,
                Some(r) => {
                    if !matches!(r, Ok(Response::Ok)) {
                        self.ok = false;
                        return self.finish(cx);
                    }
                    self.state = ActorState::Ending;
                    self.submit(Request::EndSession, &cx.waker);
                    TaskStep::Park
                }
            },
            ActorState::Ending => match self.take() {
                None => TaskStep::Park,
                Some(r) => {
                    if !matches!(r, Ok(Response::Ok)) {
                        self.ok = false;
                    }
                    self.finish(cx)
                }
            },
        }
    }
}

/// The blocking (thread-actor) twin of [`SessionActor`]: same request
/// sequence over the synchronous API.
fn run_thread_session(
    rt: &Arc<dyn Runtime>,
    params: &SwarmParams,
    client: usize,
    conn: &SrbConn,
    path: &str,
    arrival: Dur,
) -> SessionOutcome {
    rt.sleep(arrival);
    let arrival_ns = rt.now().as_nanos();
    let shape = params.shape_for(conn.tenant());
    let mut ok = true;
    'body: {
        let fd = match conn.open(path, OpenFlags::CreateRw) {
            Ok(fd) => fd,
            Err(_) => {
                ok = false;
                break 'body;
            }
        };
        for k in 0..shape.total_ops() {
            if params.think > Dur::ZERO {
                rt.sleep(params.think);
            }
            let r = match op_request(params, shape, client, k, fd) {
                Request::Write {
                    fd,
                    offset,
                    payload,
                } => conn.write(fd, offset, payload).map(|_| ()),
                Request::Read { fd, offset, len } => conn.read(fd, offset, len).map(|_| ()),
                _ => unreachable!("op_request yields only data ops"),
            };
            if r.is_err() {
                ok = false;
                break 'body;
            }
        }
        if conn.close_fd(fd).is_err() || conn.disconnect().is_err() {
            ok = false;
        }
    }
    SessionOutcome {
        tenant: conn.tenant(),
        arrival_ns,
        done_ns: rt.now().as_nanos(),
        payload_bytes: conn.acked_bytes(),
        ok,
    }
}

/// Run a client swarm against `tb`'s server in either mode.
///
/// Clients are dealt round-robin across the testbed's nodes; client `i`
/// pins pool slot `i / nodes` (mod `streams_per_node`), and every pool is
/// pre-warmed in index order, so the mapping from client to server-side
/// connection is a pure function of `i` — identical between modes, which
/// is what makes the request traces comparable.
pub fn run_swarm(tb: &Testbed, params: &SwarmParams) -> SwarmReport {
    let rt = tb.rt.clone();
    let nodes = tb.nodes();
    let params = Arc::new(params.clone());

    // Setup: the collection, one pool per node, warmed.
    let setup = tb
        .server
        .connect(tb.route(0), USER, PASSWORD)
        .expect("setup connect");
    match setup.mk_coll(&params.coll) {
        Ok(()) => {}
        Err(e) => assert!(
            matches!(e, semplar_srb::SrbError::AlreadyExists(_)),
            "mk_coll: {e}"
        ),
    }
    setup.disconnect().expect("setup disconnect");

    // Pools keyed by (node, tenant-partition): one per node by default,
    // one per tenant per node when `per_tenant_streams` is set. Warmed in
    // key order so the client → server-connection mapping is a pure
    // function of the client index either way.
    let pool_key = |i: usize| {
        let node = i % nodes;
        let part = if params.per_tenant_streams {
            params.mix.assign(i).0
        } else {
            0
        };
        (node, part)
    };
    let mut pools: std::collections::BTreeMap<(usize, u32), Arc<ConnPool>> = Default::default();
    for i in 0..params.clients {
        pools.entry(pool_key(i)).or_insert_with(|| {
            ConnPool::new(
                tb.server.clone(),
                USER,
                PASSWORD,
                PoolPolicy::Shared {
                    max_streams: params.streams_per_node,
                    max_inflight: params.inflight_per_stream,
                },
                RetryPolicy::none(),
            )
        });
    }
    for (&(n, _), pool) in &pools {
        pool.warm(&tb.route(n)).expect("warm pool");
    }

    // Sessions up front (cheap once the pools are warm), tenants tagged.
    // Each pool deals its clients round-robin across its slots via the pin.
    let arrivals = heavy_tailed_arrivals(params.seed, params.clients, params.mean_gap);
    let mut pins: std::collections::BTreeMap<(usize, u32), usize> = Default::default();
    let conns: Vec<Arc<SrbConn>> = (0..params.clients)
        .map(|i| {
            let key = pool_key(i);
            let pin = {
                let c = pins.entry(key).or_insert(0);
                let p = *c;
                *c += 1;
                p
            };
            let conn = pools[&key]
                .session(&tb.route(key.0), Some(pin))
                .expect("pooled session");
            conn.set_tenant(params.mix.assign(i));
            Arc::new(conn)
        })
        .collect();

    let outcomes: Arc<Mutex<Vec<Option<SessionOutcome>>>> =
        Arc::new(Mutex::new((0..params.clients).map(|_| None).collect()));
    let t0 = rt.now();

    let task_stats = match params.mode {
        SwarmMode::Tasks => {
            let ex = TaskExecutor::new(&rt, "swarm");
            let handles: Vec<_> = (0..params.clients)
                .map(|i| {
                    ex.spawn(Box::new(SessionActor {
                        params: params.clone(),
                        shape: params.shape_for(params.mix.assign(i)),
                        client: i,
                        conn: conns[i].clone(),
                        path: path_for(&params, i),
                        arrival: arrivals[i],
                        arrival_ns: 0,
                        state: ActorState::Arriving,
                        fd: 0,
                        ok: true,
                        slot: Arc::new(Mutex::new(None)),
                        outcomes: outcomes.clone(),
                    }))
                })
                .collect();
            for h in handles {
                h.join();
            }
            ex.stats()
        }
        SwarmMode::Threads => {
            let handles: Vec<_> = (0..params.clients)
                .map(|i| {
                    let rt2 = rt.clone();
                    let params = params.clone();
                    let conn = conns[i].clone();
                    let outcomes = outcomes.clone();
                    let arrival = arrivals[i];
                    spawn(&rt, &format!("swarm-cl{i}"), move || {
                        let path = path_for(&params, i);
                        let out = run_thread_session(&rt2, &params, i, &conn, &path, arrival);
                        outcomes.lock()[i] = Some(out);
                    })
                })
                .collect();
            for h in handles {
                h.join_unwrap();
            }
            TaskStats::default()
        }
    };

    let secs = (rt.now() - t0).as_secs_f64();
    let outcomes = outcomes
        .lock()
        .iter()
        .map(|o| o.expect("every client reports"))
        .collect();
    SwarmReport {
        outcomes,
        secs,
        task_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semplar_clusters::das2;
    use semplar_runtime::SimRuntime;

    fn tiny_params(mode: SwarmMode) -> SwarmParams {
        SwarmParams {
            clients: 6,
            streams_per_node: 3,
            inflight_per_stream: 4,
            mix: TenantMix::new(&[(TenantId(1), 2), (TenantId(2), 1)]),
            writes: 2,
            reads: 1,
            bytes_per_op: 8 << 10,
            mean_gap: Dur::from_micros(200),
            think: Dur::ZERO,
            seed: 7,
            real_payload: true,
            mode,
            coll: "/sw".into(),
            abuse: None,
            per_tenant_streams: false,
            skew: None,
        }
    }

    /// Run a swarm in a fresh sim; return the server's per-connection
    /// request trace, every object's server-side checksum, and the report.
    fn run_case(params: &SwarmParams) -> (Vec<String>, Vec<(String, u32)>, SwarmReport) {
        let params = params.clone();
        let sim = SimRuntime::new();
        sim.run_root(move |rt| {
            let tb = Testbed::new(rt, das2(), 2);
            tb.server.enable_request_trace();
            let report = run_swarm(&tb, &params);
            let trace = tb.server.take_request_trace();
            let admin = tb.server.connect(tb.route(0), USER, PASSWORD).unwrap();
            let sums: Vec<(String, u32)> = (0..params.clients)
                .map(|i| {
                    let p = format!("{}/c{i}", params.coll);
                    let c = admin.checksum(&p).unwrap();
                    (p, c)
                })
                .collect();
            admin.disconnect().unwrap();
            (trace, sums, report)
        })
    }

    fn run_mode(mode: SwarmMode) -> (Vec<String>, Vec<(String, u32)>, SwarmReport) {
        run_case(&tiny_params(mode))
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_deterministic() {
        let a = heavy_tailed_arrivals(3, 1000, Dur::from_micros(100));
        let b = heavy_tailed_arrivals(3, 1000, Dur::from_micros(100));
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        // Nominal mean is respected within a factor of ~3 either way.
        let mean_ns = a.last().unwrap().as_nanos() as f64 / 1000.0;
        assert!((30_000.0..300_000.0).contains(&mean_ns), "mean {mean_ns}");
    }

    #[test]
    fn tenant_mix_is_proportional_and_deterministic() {
        let mix = TenantMix::new(&[(TenantId(1), 3), (TenantId(2), 1)]);
        let counts = (0..400).fold([0usize; 2], |mut acc, i| {
            match mix.assign(i) {
                TenantId(1) => acc[0] += 1,
                TenantId(2) => acc[1] += 1,
                t => panic!("unexpected tenant {t}"),
            }
            acc
        });
        assert_eq!(counts, [300, 100]);
    }

    #[test]
    fn zipf_skew_is_deterministic_and_concentrates_on_low_ranks() {
        let mut p = tiny_params(SwarmMode::Tasks);
        p.skew = Some(AccessSkew {
            theta: 0.99,
            hot_objects: 8,
        });
        let paths: Vec<String> = (0..500).map(|i| path_for(&p, i)).collect();
        assert_eq!(paths, (0..500).map(|i| path_for(&p, i)).collect::<Vec<_>>());
        // Every path lands in the hot set.
        assert!(paths.iter().all(|s| {
            let r: usize = s.strip_prefix("/sw/h").unwrap().parse().unwrap();
            r < 8
        }));
        // Zipf(0.99) over 8 ranks puts ~37% on rank 0 — far above uniform.
        let rank0 = paths.iter().filter(|s| s.as_str() == "/sw/h0").count();
        assert!(rank0 > 125, "rank 0 got {rank0}/500, expected skewed mass");
        // Uniform (theta 0) spreads out: rank 0 near 1/8 of the draws.
        p.skew = Some(AccessSkew {
            theta: 0.0,
            hot_objects: 8,
        });
        let rank0_uni = (0..500).filter(|&i| path_for(&p, i) == "/sw/h0").count();
        assert!(
            (30..125).contains(&rank0_uni),
            "uniform rank 0 got {rank0_uni}/500"
        );
    }

    /// A skewed swarm runs to completion and the server holds only hot-set
    /// objects (no private `/c{i}` paths were ever created).
    #[test]
    fn skewed_swarm_touches_only_the_hot_set() {
        let mut params = tiny_params(SwarmMode::Tasks);
        params.skew = Some(AccessSkew {
            theta: 0.99,
            hot_objects: 2,
        });
        let sim = SimRuntime::new();
        sim.run_root(move |rt| {
            let tb = Testbed::new(rt, das2(), 2);
            let report = run_swarm(&tb, &params);
            assert_eq!(report.completed(), 6);
            let admin = tb.server.connect(tb.route(0), USER, PASSWORD).unwrap();
            for i in 0..params.clients {
                let private = format!("{}/c{i}", params.coll);
                assert!(
                    admin.stat(&private).is_err(),
                    "{private} should not exist under skew"
                );
            }
            assert!(admin.stat(&format!("{}/h0", params.coll)).is_ok());
            admin.disconnect().unwrap();
        });
    }

    #[test]
    fn task_swarm_completes_and_counts_tasks() {
        let (_, _, report) = run_mode(SwarmMode::Tasks);
        assert_eq!(report.completed(), 6);
        assert_eq!(report.task_stats.spawned, 6);
        assert_eq!(report.task_stats.live, 0);
        // 2 writes acked + 1 read acked per session.
        assert_eq!(report.payload_bytes(), 6 * 3 * (8 << 10));
    }

    #[test]
    fn thread_and_task_swarms_are_trace_and_checksum_identical() {
        let (trace_t, sums_t, rep_t) = run_mode(SwarmMode::Threads);
        let (trace_a, sums_a, rep_a) = run_mode(SwarmMode::Tasks);
        assert_eq!(trace_t, trace_a, "request traces diverge");
        assert_eq!(sums_t, sums_a, "object checksums diverge");
        assert_eq!(rep_t.completed(), rep_a.completed());
        assert_eq!(rep_t.payload_bytes(), rep_a.payload_bytes());
    }

    /// A small fig_tenants-shaped arm: five equal tenants, tenant 9
    /// optionally abusive (8 × 256 KiB writes vs 2 × 16 KiB + read), on
    /// either the legacy shared-stream FIFO stack or the tenant-aware one
    /// (per-tenant streams + server DRR gate). Returns p99 session
    /// goodput per tenant, bits/s.
    fn tenant_arm(abusive: bool, tenant_aware: bool) -> Vec<(TenantId, f64)> {
        let sim = SimRuntime::new();
        sim.run_root(move |rt| {
            let tb = Testbed::new(rt, das2(), 4);
            if tenant_aware {
                tb.server
                    .set_tenant_scheduler(semplar_srb::TenantScheduler::new(&tb.rt, 64 << 10, 48));
            }
            let params = SwarmParams {
                clients: 100,
                // 4 nodes x 7 shared streams: 28 is coprime-enough to the
                // 5-tenant cycle that shared connections genuinely mix
                // tenants (see fig_tenants_arm).
                streams_per_node: if tenant_aware { 2 } else { 7 },
                inflight_per_stream: 8,
                mix: TenantMix::new(&[
                    (TenantId(1), 1),
                    (TenantId(2), 1),
                    (TenantId(3), 1),
                    (TenantId(4), 1),
                    (TenantId(9), 1),
                ]),
                writes: 2,
                reads: 1,
                bytes_per_op: 16 << 10,
                mean_gap: Dur::from_millis(10),
                think: Dur::ZERO,
                seed: 42,
                real_payload: false,
                mode: SwarmMode::Tasks,
                coll: "/tn".into(),
                abuse: abusive.then_some((
                    TenantId(9),
                    OpShape {
                        writes: 8,
                        reads: 0,
                        bytes_per_op: 256 << 10,
                    },
                )),
                per_tenant_streams: tenant_aware,
                skew: None,
            };
            let report = run_swarm(&tb, &params);
            assert_eq!(report.completed(), params.clients);
            report.p99_goodput_by_tenant()
        })
    }

    /// Satellite claim behind `fig_tenants`: with one abusive tenant, the
    /// tenant-aware stack keeps every other tenant's p99 goodput within
    /// 10 % of its all-fair baseline — while the legacy shared-FIFO stack
    /// shows real damage, so the isolation being measured is not vacuous.
    #[test]
    fn drr_isolates_tenants_where_shared_fifo_collapses() {
        let worst = |base: &[(TenantId, f64)], arm: &[(TenantId, f64)]| {
            base.iter()
                .zip(arm)
                .filter(|(&(t, _), _)| t != TenantId(9))
                .map(|(&(_, b), &(_, a))| (b - a) / b * 100.0)
                .fold(f64::MIN, f64::max)
        };
        let fifo = worst(&tenant_arm(false, false), &tenant_arm(true, false));
        let drr = worst(&tenant_arm(false, true), &tenant_arm(true, true));
        assert!(
            fifo > 10.0,
            "shared FIFO shows no head-of-line damage ({fifo:.1}%) — the \
             isolation claim would be vacuous"
        );
        assert!(
            drr < 10.0,
            "tenant-aware stack broke the isolation claim: {drr:.1}%"
        );
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// Satellite: across random seeds and workload shapes, the
        /// event-driven client produces bit-identical per-connection
        /// request traces and server-side object checksums to the
        /// thread-per-client path. One pool slot per client keeps the
        /// client → connection mapping a pure function of the index, so
        /// the traces are directly comparable.
        #[test]
        fn actor_and_thread_modes_agree(
            seed in 0u64..512,
            clients in 2usize..7,
            writes in 1u32..3,
            reads in 0u32..3,
            shift in 0u32..3,
        ) {
            let mut p = tiny_params(SwarmMode::Threads);
            p.seed = seed;
            p.clients = clients;
            p.streams_per_node = clients;
            p.writes = writes;
            p.reads = reads;
            p.bytes_per_op = (4 << 10) << shift;
            let (trace_t, sums_t, _) = run_case(&p);
            p.mode = SwarmMode::Tasks;
            let (trace_a, sums_a, _) = run_case(&p);
            prop_assert_eq!(trace_t, trace_a);
            prop_assert_eq!(sums_t, sums_a);
        }
    }
}
