//! Runtime-aware synchronization primitives.
//!
//! Everything here is built from `parking_lot::Mutex` + the runtime's
//! [`Event`] cells with *re-check loops*, so the same code is correct on both
//! the virtual-time and wall-clock backends (events may wake spuriously via
//! broadcasts).

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::runtime::{Event, Runtime, Wake};
use crate::time::Dur;

/// Error returned by [`Channel`] operations once the channel is closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Closed;

impl std::fmt::Display for Closed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel closed")
    }
}
impl std::error::Error for Closed {}

struct ChannelInner<T> {
    q: VecDeque<T>,
    closed: bool,
}

/// An unbounded MPMC FIFO channel whose blocking `recv` is runtime-aware.
///
/// This is the structure behind SEMPLAR's I/O queue (paper Fig. 2): the
/// compute thread enqueues I/O requests; I/O threads block on `recv` via a
/// condition-variable-style event instead of busy-waiting (paper §4.3).
pub struct Channel<T> {
    inner: Arc<Mutex<ChannelInner<T>>>,
    items: Event,
}

impl<T> Clone for Channel<T> {
    fn clone(&self) -> Self {
        Channel {
            inner: self.inner.clone(),
            items: self.items.clone(),
        }
    }
}

impl<T> Channel<T> {
    /// Create an empty channel bound to `rt`'s event mechanism.
    pub fn new(rt: &Arc<dyn Runtime>) -> Channel<T> {
        Channel {
            inner: Arc::new(Mutex::new(ChannelInner {
                q: VecDeque::new(),
                closed: false,
            })),
            items: rt.event(),
        }
    }

    /// Enqueue an item, waking one blocked receiver.
    pub fn send(&self, v: T) -> Result<(), Closed> {
        {
            let mut g = self.inner.lock();
            if g.closed {
                return Err(Closed);
            }
            g.q.push_back(v);
        }
        self.items.signal();
        Ok(())
    }

    /// Dequeue, blocking until an item arrives or the channel closes empty.
    pub fn recv(&self) -> Result<T, Closed> {
        loop {
            {
                let mut g = self.inner.lock();
                if let Some(v) = g.q.pop_front() {
                    return Ok(v);
                }
                if g.closed {
                    return Err(Closed);
                }
            }
            self.items.wait();
        }
    }

    /// Dequeue without blocking.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.lock().q.pop_front()
    }

    /// Dequeue, giving up after `d`.
    pub fn recv_timeout(&self, d: Dur) -> Result<Option<T>, Closed> {
        loop {
            {
                let mut g = self.inner.lock();
                if let Some(v) = g.q.pop_front() {
                    return Ok(Some(v));
                }
                if g.closed {
                    return Err(Closed);
                }
            }
            // NOTE: a spurious broadcast wake restarts the full timeout; all
            // users of this method treat the timeout as advisory.
            if self.items.wait_timeout(d) == Wake::Timeout {
                return Ok(self.inner.lock().q.pop_front());
            }
        }
    }

    /// Close the channel: senders fail, receivers drain then see [`Closed`].
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.items.notify_all();
        // Wake receivers that were blocked with no items pending.
        self.items.signal_n(64);
    }

    /// True once [`Channel::close`] has been called (queued items may still
    /// be drained by receivers).
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().q.len()
    }

    /// True if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A counting semaphore.
#[derive(Clone)]
pub struct Semaphore {
    ev: Event,
}

impl Semaphore {
    /// Create with `permits` initial permits.
    pub fn new(rt: &Arc<dyn Runtime>, permits: usize) -> Semaphore {
        let ev = rt.event();
        ev.signal_n(permits);
        Semaphore { ev }
    }

    /// Consume one permit, blocking until available.
    pub fn acquire(&self) {
        self.ev.wait();
    }

    /// Release one permit.
    pub fn release(&self) {
        self.ev.signal();
    }
}

struct BarrierInner {
    arrived: usize,
    generation: u64,
    /// Event for the *current* generation; replaced by each leader so
    /// next-generation waiters can never steal this generation's permits.
    ev: Event,
}

/// A reusable N-party barrier (used for MPI_Barrier and phase alignment in
/// the benchmarks).
pub struct Barrier {
    n: usize,
    rt: Arc<dyn Runtime>,
    inner: Mutex<BarrierInner>,
}

impl Barrier {
    /// A barrier for `n` parties. `n` must be at least 1.
    pub fn new(rt: &Arc<dyn Runtime>, n: usize) -> Arc<Barrier> {
        assert!(n >= 1, "barrier needs at least one party");
        Arc::new(Barrier {
            n,
            rt: rt.clone(),
            inner: Mutex::new(BarrierInner {
                arrived: 0,
                generation: 0,
                ev: rt.event(),
            }),
        })
    }

    /// Block until all `n` parties have called `wait`. Returns `true` for
    /// exactly one "leader" party per generation.
    pub fn wait(&self) -> bool {
        let (gen0, ev) = {
            let mut g = self.inner.lock();
            g.arrived += 1;
            if g.arrived == self.n {
                g.arrived = 0;
                g.generation += 1;
                // Bank one permit per waiter of this generation on the OLD
                // event: a waiter that has not blocked yet still finds its
                // permit, so the wakeup cannot be lost.
                let old = std::mem::replace(&mut g.ev, self.rt.event());
                drop(g);
                old.signal_n(self.n - 1);
                return true;
            }
            (g.generation, g.ev.clone())
        };
        loop {
            if self.inner.lock().generation != gen0 {
                return false;
            }
            ev.wait();
        }
    }
}

struct WaitGroupInner {
    count: usize,
}

/// Go-style wait group: `add` before spawning, `done` in each worker,
/// `wait` to join them all.
pub struct WaitGroup {
    inner: Mutex<WaitGroupInner>,
    ev: Event,
}

impl WaitGroup {
    /// An empty wait group.
    pub fn new(rt: &Arc<dyn Runtime>) -> Arc<WaitGroup> {
        Arc::new(WaitGroup {
            inner: Mutex::new(WaitGroupInner { count: 0 }),
            ev: rt.event(),
        })
    }

    /// Register `n` more outstanding tasks.
    pub fn add(&self, n: usize) {
        self.inner.lock().count += n;
    }

    /// Mark one task complete.
    pub fn done(&self) {
        let zero = {
            let mut g = self.inner.lock();
            assert!(g.count > 0, "WaitGroup::done without matching add");
            g.count -= 1;
            g.count == 0
        };
        if zero {
            self.ev.notify_all();
            self.ev.signal();
        }
    }

    /// Block until the outstanding count reaches zero.
    pub fn wait(&self) {
        loop {
            if self.inner.lock().count == 0 {
                // Cascade the permit so every other waiter wakes too.
                self.ev.signal();
                return;
            }
            self.ev.wait();
        }
    }
}

/// A runtime-aware mutual-exclusion lock.
///
/// Unlike `parking_lot::Mutex`, blocking on an `RtMutex` goes through the
/// runtime's event mechanism, so the virtual-time engine knows the waiter is
/// blocked. **Rule of thumb for this codebase:** any lock that may be held
/// across a sleeping/transferring operation (e.g. a TCP connection busy with
/// an RTT-long request) must be an `RtMutex`; `parking_lot` locks are only
/// for short, non-blocking critical sections.
pub struct RtMutex<T> {
    sem: Semaphore,
    value: Mutex<T>,
}

impl<T> RtMutex<T> {
    /// Wrap `value` in a runtime-aware lock.
    pub fn new(rt: &Arc<dyn Runtime>, value: T) -> RtMutex<T> {
        RtMutex {
            sem: Semaphore::new(rt, 1),
            value: Mutex::new(value),
        }
    }

    /// Acquire the lock, blocking through the runtime.
    pub fn lock(&self) -> RtMutexGuard<'_, T> {
        self.sem.acquire();
        // The semaphore admits exactly one holder, so the inner lock is
        // always free here; it exists only to provide interior mutability.
        let inner = self
            .value
            .try_lock()
            .expect("RtMutex inner lock contended despite semaphore");
        RtMutexGuard {
            owner: self,
            inner: Some(inner),
        }
    }
}

/// RAII guard for [`RtMutex`]. Releases the lock on drop.
pub struct RtMutexGuard<'a, T> {
    owner: &'a RtMutex<T>,
    inner: Option<parking_lot::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for RtMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard already released")
    }
}

impl<T> std::ops::DerefMut for RtMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard already released")
    }
}

impl<T> Drop for RtMutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the inner lock before waking the next holder.
        self.inner = None;
        self.owner.sem.release();
    }
}

/// A write-once cell whose readers block until the value is published.
/// This backs SEMPLAR's `Request` completion handles.
pub struct OnceCellBlocking<T> {
    slot: Mutex<Option<T>>,
    ev: Event,
}

impl<T: Clone> OnceCellBlocking<T> {
    /// An empty cell.
    pub fn new(rt: &Arc<dyn Runtime>) -> Arc<OnceCellBlocking<T>> {
        Arc::new(OnceCellBlocking {
            slot: Mutex::new(None),
            ev: rt.event(),
        })
    }

    /// Publish the value. Panics if already set.
    pub fn set(&self, v: T) {
        let mut g = self.slot.lock();
        assert!(g.is_none(), "OnceCellBlocking set twice");
        *g = Some(v);
        drop(g);
        self.ev.notify_all();
        self.ev.signal();
    }

    /// Non-blocking read.
    pub fn get(&self) -> Option<T> {
        self.slot.lock().clone()
    }

    /// Block until the value is published, then return a clone.
    pub fn wait(&self) -> T {
        loop {
            if let Some(v) = self.slot.lock().clone() {
                // Cascade the permit so every other waiter wakes too.
                self.ev.signal();
                return v;
            }
            self.ev.wait();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::spawn;
    use crate::sim::simulate;
    use crate::RealRuntime;

    fn both_runtimes(test: impl Fn(Arc<dyn Runtime>) + Send + Sync + Clone + 'static) {
        test(RealRuntime::new().handle());
        let t2 = test.clone();
        simulate(t2);
    }

    #[test]
    fn channel_fifo_order() {
        both_runtimes(|rt| {
            let ch: Channel<u32> = Channel::new(&rt);
            for i in 0..10 {
                ch.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(ch.recv().unwrap(), i);
            }
        });
    }

    #[test]
    fn channel_blocking_recv() {
        both_runtimes(|rt| {
            let ch: Channel<&'static str> = Channel::new(&rt);
            let ch2 = ch.clone();
            let rt2 = rt.clone();
            let h = spawn(&rt, "producer", move || {
                rt2.sleep(Dur::from_millis(5));
                ch2.send("hello").unwrap();
            });
            assert_eq!(ch.recv().unwrap(), "hello");
            h.join_unwrap();
        });
    }

    #[test]
    fn channel_close_drains_then_errors() {
        both_runtimes(|rt| {
            let ch: Channel<u32> = Channel::new(&rt);
            ch.send(1).unwrap();
            ch.close();
            assert_eq!(ch.recv(), Ok(1));
            assert_eq!(ch.recv(), Err(Closed));
            assert_eq!(ch.send(2), Err(Closed));
        });
    }

    #[test]
    fn channel_many_producers_one_consumer() {
        both_runtimes(|rt| {
            let ch: Channel<u64> = Channel::new(&rt);
            let mut hs = Vec::new();
            for p in 0..4u64 {
                let ch2 = ch.clone();
                hs.push(spawn(&rt, &format!("p{p}"), move || {
                    for i in 0..25 {
                        ch2.send(p * 100 + i).unwrap();
                    }
                }));
            }
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(ch.recv().unwrap());
            }
            got.sort_unstable();
            let mut want: Vec<u64> = (0..4)
                .flat_map(|p| (0..25).map(move |i| p * 100 + i))
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
            for h in hs {
                h.join_unwrap();
            }
        });
    }

    #[test]
    fn barrier_synchronizes_parties() {
        both_runtimes(|rt| {
            let b = Barrier::new(&rt, 4);
            let hits = Arc::new(Mutex::new(0usize));
            let mut hs = Vec::new();
            for i in 0..4 {
                let b2 = b.clone();
                let hits2 = hits.clone();
                let rt2 = rt.clone();
                hs.push(spawn(&rt, &format!("b{i}"), move || {
                    rt2.sleep(Dur::from_millis(i as u64));
                    *hits2.lock() += 1;
                    b2.wait();
                    // After the barrier, all 4 increments must be visible.
                    assert_eq!(*hits2.lock(), 4);
                }));
            }
            for h in hs {
                h.join_unwrap();
            }
        });
    }

    #[test]
    fn barrier_is_reusable() {
        both_runtimes(|rt| {
            let b = Barrier::new(&rt, 2);
            let b2 = b.clone();
            let h = spawn(&rt, "peer", move || {
                for _ in 0..5 {
                    b2.wait();
                }
            });
            let mut leader_count = 0;
            for _ in 0..5 {
                if b.wait() {
                    leader_count += 1;
                }
            }
            h.join_unwrap();
            assert!(leader_count <= 5);
        });
    }

    #[test]
    fn waitgroup_waits_for_all() {
        both_runtimes(|rt| {
            let wg = WaitGroup::new(&rt);
            let n = Arc::new(Mutex::new(0usize));
            wg.add(8);
            let mut hs = Vec::new();
            for i in 0..8u64 {
                let wg2 = wg.clone();
                let n2 = n.clone();
                let rt2 = rt.clone();
                hs.push(spawn(&rt, &format!("w{i}"), move || {
                    rt2.sleep(Dur::from_micros(i));
                    *n2.lock() += 1;
                    wg2.done();
                }));
            }
            wg.wait();
            assert_eq!(*n.lock(), 8);
            for h in hs {
                h.join_unwrap();
            }
        });
    }

    #[test]
    fn once_cell_blocks_until_set() {
        both_runtimes(|rt| {
            let c: Arc<OnceCellBlocking<u32>> = OnceCellBlocking::new(&rt);
            assert_eq!(c.get(), None);
            let c2 = c.clone();
            let rt2 = rt.clone();
            let h = spawn(&rt, "setter", move || {
                rt2.sleep(Dur::from_millis(2));
                c2.set(99);
            });
            assert_eq!(c.wait(), 99);
            assert_eq!(c.get(), Some(99));
            h.join_unwrap();
        });
    }

    #[test]
    fn rtmutex_serializes_engine_blocking_holders() {
        // The holder sleeps (engine-blocked) while holding the lock; a
        // parking_lot mutex here would wedge the virtual clock.
        both_runtimes(|rt| {
            let m = Arc::new(RtMutex::new(&rt, 0u32));
            let mut hs = Vec::new();
            for i in 0..4 {
                let m2 = m.clone();
                let rt2 = rt.clone();
                hs.push(spawn(&rt, &format!("h{i}"), move || {
                    let mut g = m2.lock();
                    let v = *g;
                    rt2.sleep(Dur::from_millis(2));
                    *g = v + 1; // no lost updates despite the sleep
                }));
            }
            for h in hs {
                h.join_unwrap();
            }
            assert_eq!(*m.lock(), 4);
        });
    }

    #[test]
    fn semaphore_limits_concurrency() {
        both_runtimes(|rt| {
            let sem = Arc::new(Semaphore::new(&rt, 2));
            let active = Arc::new(Mutex::new((0usize, 0usize))); // (current, max)
            let mut hs = Vec::new();
            for i in 0..6 {
                let sem2 = sem.clone();
                let a2 = active.clone();
                let rt2 = rt.clone();
                hs.push(spawn(&rt, &format!("s{i}"), move || {
                    sem2.acquire();
                    {
                        let mut g = a2.lock();
                        g.0 += 1;
                        g.1 = g.1.max(g.0);
                    }
                    rt2.sleep(Dur::from_millis(1));
                    a2.lock().0 -= 1;
                    sem2.release();
                }));
            }
            for h in hs {
                h.join_unwrap();
            }
            assert!(active.lock().1 <= 2, "semaphore admitted >2 at once");
        });
    }
}
