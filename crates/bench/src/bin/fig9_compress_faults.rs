//! The Fig. 9 compression pipeline under injected faults: the
//! async-compressed write on DAS-2, fault-free vs under the same seeded
//! fault plan as `fig_availability` (WAN link flaps, a vault stall, a
//! connection reset, a server crash + restart).
//!
//! The pipeline retains each compressed frame until the server
//! acknowledges it, so a severed connection costs a re-ship of at most
//! `depth` frames — never a recompression. Entirely in virtual time and
//! seeded, so the output is bit-identical across invocations — CI diffs
//! `--quick` against `results/fig9_compress_faults_quick.txt`.

use semplar_bench::table::mbps;
use semplar_bench::{fig9_compress_faults, Table};
use semplar_clusters::das2;
use semplar_runtime::{Dur, Time};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Crash timing mirrors fig_availability: late enough that the ranks
    // have re-established the connections the reset severed.
    let (procs, bytes, crash_at) = if quick {
        (2, 8 << 20, Dur::from_secs(8))
    } else {
        (4, 32 << 20, Dur::from_secs(16))
    };
    let seed = 7u64;

    let rep = fig9_compress_faults(das2(), procs, bytes, seed, Dur::from_secs(2), crash_at);

    let mut t = Table::new(
        &format!(
            "Compression under faults (das2): {procs} procs x {} MiB async-compressed, seed {seed}",
            bytes >> 20
        ),
        &["metric", "value"],
    );
    t.row(vec!["write fault-free".into(), mbps(rep.baseline_mbps)]);
    t.row(vec!["write under faults".into(), mbps(rep.faulted_mbps)]);
    t.row(vec![
        "goodput".into(),
        format!("{:.1} %", rep.goodput_fraction() * 100.0),
    ]);
    t.row(vec!["lz ratio".into(), format!("{:.2}", rep.ratio)]);
    t.row(vec![
        "frames re-shipped (no recompress)".into(),
        rep.resumed_frames.to_string(),
    ]);
    t.row(vec![
        "disconnects seen".into(),
        rep.recovery.disconnects.to_string(),
    ]);
    t.row(vec![
        "reconnects".into(),
        rep.recovery.reconnects.to_string(),
    ]);
    t.row(vec![
        "ops recovered".into(),
        rep.recovery.recovered_ops.to_string(),
    ]);
    t.row(vec![
        "total recovery time".into(),
        format!("{:.3} s", rep.recovery.recovery_time.as_secs_f64()),
    ]);
    t.row(vec![
        "connections severed".into(),
        rep.faults.conns_severed.to_string(),
    ]);
    t.print();

    println!("fault ledger (virtual time):");
    for (at, what) in &rep.faults.ledger {
        println!("  [{:9.3} s] {what}", (*at - Time::ZERO).as_secs_f64());
    }
}
