//! The SRB wire protocol.
//!
//! Every operation is a synchronous request/response exchange — the client
//! sends a request message over its TCP stream and blocks for the server's
//! response. This is the protocol economics that makes SEMPLAR's
//! asynchronous primitives valuable: each synchronous call pays one full
//! round trip, and on a 182 ms transoceanic path (DAS-2 → SDSC) those RTTs
//! dominate small operations.

use crate::types::{ObjStat, OpenFlags, Payload, SrbError};

/// Fixed per-message framing/header overhead, bytes.
///
/// The session/transport tags ([`ReqFrame::seq`], [`ReqFrame::session`])
/// ride inside this fixed header, so tagging requests does not change any
/// wire size.
pub const WIRE_HDR: u64 = 256;

/// A logical session identifier, scoped to one transport stream.
///
/// The server keeps one fd namespace per `(connection, session)` pair so
/// pooled clients multiplexed over a shared stream cannot observe each
/// other's descriptors. Exclusive (per-open) transports carry exactly one
/// session, id 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A tenant (accounting principal) tag carried by every request.
///
/// The SRB authenticates a user per connection; a *tenant* is the coarser
/// billing/QoS domain a session belongs to — one project or user community
/// sharing a server. The tag rides in the fixed [`WIRE_HDR`] header (like
/// `seq`/`session`, there is room in the real SRB's 256-byte header), so
/// tagging changes no wire size, and the server's per-tenant fair queueing
/// can classify work without any out-of-band state. Tenant 0 is the
/// default for untagged traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A tagged request as it travels on a transport stream.
///
/// `seq` is unique per stream and echoed verbatim by the server so that a
/// demultiplexer can route responses back to the issuing exchange even when
/// several are in flight on one stream.
#[derive(Clone, Debug)]
pub struct ReqFrame {
    /// Stream-unique exchange tag, echoed in the matching [`RespFrame`].
    pub seq: u64,
    /// Session whose fd namespace the request operates in.
    pub session: SessionId,
    /// Tenant the issuing session belongs to (0 = untagged).
    pub tenant: TenantId,
    /// Shard membership epoch the issuing client believes is current.
    /// Rides the spare space in the fixed [`WIRE_HDR`] header (like
    /// `seq`/`session`/`tenant`), so epoch tagging changes no wire size.
    /// `0` means "un-epoched" — the client is not under membership
    /// governance and the server never stale-checks it (though a
    /// post-restart hard fence still refuses its mutations until the
    /// server's epoch is re-certified). Servers with epoch fencing enabled
    /// reject mutations whose non-zero epoch is stale (below the server's
    /// certified epoch) with
    /// [`SrbError`](crate::types::SrbError)`::StaleEpoch`.
    pub epoch: u64,
    /// The operation itself.
    pub req: Request,
}

impl ReqFrame {
    /// Bytes on the wire — tags live in the fixed header, so this is the
    /// inner request's size unchanged.
    pub fn wire_size(&self) -> u64 {
        self.req.wire_size()
    }
}

/// A tagged response frame; `seq`/`session` echo the triggering request.
#[derive(Clone, Debug)]
pub struct RespFrame {
    /// Echoed exchange tag.
    pub seq: u64,
    /// Echoed session id.
    pub session: SessionId,
    /// Read-lease grant: the object's write epoch sampled *before* the
    /// server performed the read. Rides the spare space in the fixed
    /// [`WIRE_HDR`] header (like `seq`/`session`/tenant), so granting
    /// leases changes no wire size. `None` for every non-read response and
    /// whenever the server has leases disabled; lease *revocation* travels
    /// through the server's write-hook broadcast rather than a frame of its
    /// own.
    pub lease: Option<u64>,
    /// The result.
    pub resp: Response,
}

impl RespFrame {
    /// Bytes on the wire — the inner response's size unchanged (the lease
    /// grant lives in the fixed header).
    pub fn wire_size(&self) -> u64 {
        self.resp.wire_size()
    }
}

/// A client → server request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Create a collection.
    MkColl(String),
    /// Remove an empty collection.
    RmColl(String),
    /// Register a new data object.
    Create(String),
    /// Open a data object, returning a descriptor.
    Open(String, OpenFlags),
    /// Close a descriptor.
    Close(u32),
    /// Read `len` bytes at `offset`.
    Read {
        /// Descriptor from [`Request::Open`].
        fd: u32,
        /// Byte offset.
        offset: u64,
        /// Bytes requested.
        len: u64,
    },
    /// Write the payload at `offset`.
    Write {
        /// Descriptor from [`Request::Open`].
        fd: u32,
        /// Byte offset.
        offset: u64,
        /// Data to write.
        payload: Payload,
    },
    /// Read many extents in one exchange (list-I/O). The response packs
    /// the extents' data back-to-back in list order, each truncated at EOF
    /// POSIX-style. The extent table travels in the payload region — 16
    /// bytes per `(offset, len)` pair on the wire — while the header stays
    /// the fixed [`WIRE_HDR`] bytes, so existing ops are framed unchanged.
    ReadList {
        /// Descriptor from [`Request::Open`].
        fd: u32,
        /// `(offset, len)` pairs, served in list order.
        extents: Vec<(u64, u64)>,
    },
    /// Write many extents in one exchange (list-I/O). `payload` packs the
    /// extents' data back-to-back in list order; its length must equal the
    /// sum of the extent lengths — the wire carries only packed payload
    /// bytes, never the holes between extents.
    WriteList {
        /// Descriptor from [`Request::Open`].
        fd: u32,
        /// `(offset, len)` pairs, applied in list order.
        extents: Vec<(u64, u64)>,
        /// The extents' data, packed back-to-back.
        payload: Payload,
    },
    /// Object metadata.
    Stat(String),
    /// Remove a data object.
    Unlink(String),
    /// Immediate children of a collection.
    List(String),
    /// Server-side Adler-32 checksum of a whole object.
    Checksum(String),
    /// Copy a data object to a federated peer server (§8: the SRB server
    /// "can be configured to run in a federated mode where one server can
    /// act as a client to other servers").
    Replicate {
        /// Logical path of the object to copy.
        path: String,
        /// Peer name registered via `SrbServer::add_peer`.
        peer: String,
    },
    /// Retire one session's fd namespace without tearing the stream down.
    /// Only meaningful on shared (multiplexed) transports; exclusive
    /// connections use [`Request::Disconnect`].
    EndSession,
    /// Tear the connection down.
    Disconnect,
}

impl Request {
    /// Bytes this request occupies on the wire (header + inline payload).
    /// List requests carry their extent table (16 bytes per pair) and, for
    /// writes, the packed payload — holes between extents cost nothing.
    pub fn wire_size(&self) -> u64 {
        match self {
            Request::Write { payload, .. } => WIRE_HDR + payload.len(),
            Request::ReadList { extents, .. } => WIRE_HDR + 16 * extents.len() as u64,
            Request::WriteList {
                extents, payload, ..
            } => WIRE_HDR + 16 * extents.len() as u64 + payload.len(),
            _ => WIRE_HDR,
        }
    }

    /// Short stable operation name, used by the server's request trace.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::MkColl(_) => "mkcoll",
            Request::RmColl(_) => "rmcoll",
            Request::Create(_) => "create",
            Request::Open(_, _) => "open",
            Request::Close(_) => "close",
            Request::Read { .. } => "read",
            Request::Write { .. } => "write",
            Request::ReadList { .. } => "readlist",
            Request::WriteList { .. } => "writelist",
            Request::Stat(_) => "stat",
            Request::Unlink(_) => "unlink",
            Request::List(_) => "list",
            Request::Checksum(_) => "checksum",
            Request::Replicate { .. } => "replicate",
            Request::EndSession => "endsession",
            Request::Disconnect => "disconnect",
        }
    }
}

/// A server → client response.
#[derive(Clone, Debug)]
pub enum Response {
    /// Success with no body.
    Ok,
    /// A freshly opened descriptor.
    Fd(u32),
    /// Read data.
    Data(Payload),
    /// Bytes accepted by a write.
    Written(u64),
    /// `stat` result.
    Stat(ObjStat),
    /// Collection listing.
    Names(Vec<String>),
    /// Whole-object checksum.
    Checksum(u32),
    /// Operation failed.
    Error(SrbError),
}

impl Response {
    /// Bytes this response occupies on the wire.
    pub fn wire_size(&self) -> u64 {
        match self {
            Response::Data(p) => WIRE_HDR + p.len(),
            Response::Names(n) => WIRE_HDR + n.iter().map(|s| s.len() as u64 + 8).sum::<u64>(),
            _ => WIRE_HDR,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_requests_carry_payload_on_the_wire() {
        let r = Request::Write {
            fd: 1,
            offset: 0,
            payload: Payload::sized(1_000_000),
        };
        assert_eq!(r.wire_size(), WIRE_HDR + 1_000_000);
        assert_eq!(
            Request::Open("/x".into(), OpenFlags::Read).wire_size(),
            WIRE_HDR
        );
    }

    #[test]
    fn list_requests_carry_extent_table_and_packed_payload() {
        let extents = vec![(0u64, 4096u64), (16_384, 4096), (32_768, 4096)];
        let r = Request::ReadList {
            fd: 3,
            extents: extents.clone(),
        };
        // Extent table only: 16 bytes per pair, no data yet.
        assert_eq!(r.wire_size(), WIRE_HDR + 48);
        assert_eq!(r.op_name(), "readlist");
        let w = Request::WriteList {
            fd: 3,
            extents,
            payload: Payload::sized(3 * 4096),
        };
        // Packed payload only — the 12 KiB of holes between the extents
        // never touch the wire.
        assert_eq!(w.wire_size(), WIRE_HDR + 48 + 3 * 4096);
        assert_eq!(w.op_name(), "writelist");
    }

    #[test]
    fn read_responses_carry_payload_on_the_wire() {
        assert_eq!(
            Response::Data(Payload::sized(4096)).wire_size(),
            WIRE_HDR + 4096
        );
        assert_eq!(Response::Ok.wire_size(), WIRE_HDR);
        assert!(Response::Names(vec!["/a/b".into()]).wire_size() > WIRE_HDR);
    }
}
