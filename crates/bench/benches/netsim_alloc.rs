//! Allocation-engine microbenchmark: cost of one flow arrival + departure
//! (the netsim hot path) under N concurrent background flows, batch engine
//! vs incremental engine.
//!
//! The population is shaped to stress exactly what the incremental engine
//! exploits: flows are spread over many links (disjoint connected
//! components of ~8 flows each), and every flow carries a distinct rate cap
//! scattered around the fair share, which forces the progressive-filling
//! reference to freeze flows one round at a time. The churn events touch
//! only the first component, so the incremental engine settles and
//! re-solves ~8 flows while the batch engine settles and re-solves all N.
//!
//! Compare `netsim_alloc/batch/N` with `netsim_alloc/incremental/N`; the
//! acceptance bar for this PR is ≥5× at N = 256.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use semplar_netsim::net::replay::Harness;
use semplar_netsim::net::{BusSpec, DeviceClass};
use semplar_netsim::{AllocMode, Bw, LinkId};
use semplar_runtime::Dur;

const FLOWS_PER_LINK: usize = 8;

struct Scenario {
    h: Harness,
    links: Vec<LinkId>,
    churn_slot: usize,
}

/// N long-lived capped flows, 8 per link, plus one churnable flow on the
/// first link. Caps are distinct and straddle the 100 Mb/s / 8 fair share
/// so progressive filling cannot freeze whole links at once.
fn build(mode: AllocMode, flows: usize) -> Scenario {
    let mut h = Harness::new(mode);
    let nlinks = flows.div_ceil(FLOWS_PER_LINK);
    let links: Vec<LinkId> = (0..nlinks)
        .map(|i| h.add_link(&format!("l{i}"), Bw::mbps(100.0)))
        .collect();
    let bus = h.add_bus(BusSpec::default());
    for f in 0..flows {
        let link = links[f / FLOWS_PER_LINK];
        // Distinct caps around the 12.5 Mb/s fair share: 6..19 Mb/s.
        let cap = 6.0e6 + (f % FLOWS_PER_LINK) as f64 * 2.0e6 + f as f64 * 1e3;
        let tags = [(bus, DeviceClass::Wan)];
        h.start(&[link], 1e15, Some(cap), &tags);
    }
    let churn_slot = h.start(&[links[0]], 1e15, None, &[]);
    Scenario {
        h,
        links,
        churn_slot,
    }
}

fn bench_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim_alloc");
    for &flows in &[16usize, 64, 256, 1024] {
        for (label, mode) in [
            ("batch", AllocMode::Batch),
            ("incremental", AllocMode::Incremental),
        ] {
            let mut sc = build(mode, flows);
            g.bench_with_input(BenchmarkId::new(label, flows), &flows, |b, _| {
                b.iter(|| {
                    // One departure + one arrival in the first component.
                    sc.h.tick(Dur::from_micros(5));
                    sc.h.finish(sc.churn_slot);
                    sc.h.tick(Dur::from_micros(5));
                    sc.churn_slot = sc.h.start(&[sc.links[0]], 1e15, None, &[]);
                })
            });
        }
    }
    g.finish();
    {
        let flows = 256usize;
        let mut b = build(AllocMode::Batch, flows);
        let mut i = build(AllocMode::Incremental, flows);
        let time = |sc: &mut Scenario| {
            let t = std::time::Instant::now();
            for _ in 0..2000 {
                sc.h.tick(Dur::from_micros(5));
                sc.h.finish(sc.churn_slot);
                sc.h.tick(Dur::from_micros(5));
                sc.churn_slot = sc.h.start(&[sc.links[0]], 1e15, None, &[]);
            }
            t.elapsed().as_secs_f64()
        };
        let tb = time(&mut b);
        let ti = time(&mut i);
        println!(
            "netsim_alloc speedup @ {flows} flows: {:.1}x  (batch {:.2} µs/event, incremental {:.2} µs/event)",
            tb / ti,
            tb / 4000.0 * 1e6,
            ti / 4000.0 * 1e6,
        );
        println!("incremental stats @ {flows} flows: {:?}", i.h.stats());
    }
}

criterion_group!(benches, bench_alloc);
criterion_main!(benches);
