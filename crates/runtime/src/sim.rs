//! The virtual-time runtime.
//!
//! # Model
//!
//! Every simulated entity (an MPI rank, an SRB server connection handler, a
//! SEMPLAR I/O thread) is a **real OS thread** registered with the engine as
//! an *actor*. Actors may only block through the engine — via
//! [`Runtime::sleep`], or by waiting on an engine-created [`Event`]. The
//! engine keeps a count of *runnable* actors; when the last runnable actor
//! blocks, the virtual clock jumps to the earliest pending timer and the
//! corresponding sleepers are released. Virtual time therefore advances in
//! discrete hops and never passes while any actor still has work to do.
//!
//! If every actor is blocked and no timer is pending, the simulation has
//! genuinely deadlocked; the engine panics with a table of every actor and
//! what it is blocked on, then poisons itself so all other actors unwind
//! too.
//!
//! # Why threads rather than an event loop?
//!
//! The point of this reproduction is to run the *actual* SEMPLAR
//! implementation — compute thread, FIFO I/O queue, condition-variable
//! wakeups (Fig. 2 of the paper) — not a model of it. Mapping each simulated
//! thread onto a real thread lets the identical library code run under
//! virtual time (for the WAN-scale experiments) and wall-clock time (unit
//! tests, examples) without modification.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering as AtOrd};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::runtime::{Event, EventApi, JoinHandle, Runtime, Wake};
use crate::time::{Dur, Time};

thread_local! {
    static CURRENT_ACTOR: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

/// When set, the process-wide panic hook suppresses *all* actor panic
/// output. Used by the model checker, whose exploration deliberately
/// drives simulations into panics (deadlocks, violated invariants) and
/// reports them as counterexamples instead.
static QUIET_PANICS: AtomicBool = AtomicBool::new(false);

/// Suppress (or restore) printing of actor panics process-wide. The model
/// checker sets this while exploring schedules: a panicking interleaving
/// is a *result* there, not a bug to dump backtraces for.
pub fn set_quiet_panics(quiet: bool) {
    QUIET_PANICS.store(quiet, AtOrd::SeqCst);
}

const SLOT_PENDING: u8 = 0;
const SLOT_SIGNALED: u8 = 1;
const SLOT_TIMEOUT: u8 = 2;
const SLOT_SHUTDOWN: u8 = 3;

/// Panic payload used to unwind daemon actors at simulation quiescence.
/// The spawn wrapper recognizes it and treats the exit as clean.
struct ShutdownSignal;

/// One blocked wait. All fields are only mutated while the engine lock is
/// held; the atomics exist purely to avoid `unsafe` interior mutability.
struct WaitSlot {
    state: AtomicU8,
    actor: u64,
    /// Explicit [`Runtime::schedule_point`] label, if this wait is one.
    tag: Option<Arc<str>>,
}

impl WaitSlot {
    fn new(actor: u64) -> Arc<WaitSlot> {
        Arc::new(WaitSlot {
            state: AtomicU8::new(SLOT_PENDING),
            actor,
            tag: None,
        })
    }

    fn tagged(actor: u64, tag: &str) -> Arc<WaitSlot> {
        Arc::new(WaitSlot {
            state: AtomicU8::new(SLOT_PENDING),
            actor,
            tag: Some(Arc::from(tag)),
        })
    }

    fn is_woken(&self) -> bool {
        self.state.load(AtOrd::Relaxed) != SLOT_PENDING
    }
}

struct TimerEntry {
    at: u64,
    seq: u64,
    slot: Arc<WaitSlot>,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    // Reversed so the BinaryHeap (a max-heap) pops the earliest timer first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// One eligible wake at a schedule choice point: a pending timer (or
/// [`Runtime::schedule_point`] yield) the engine could fire next.
#[derive(Clone, Debug)]
pub struct Choice {
    /// Name of the actor that would wake.
    pub actor: String,
    /// What the actor is blocked on (`"sleep"`, `"event wait (timeout)"`,
    /// `"schedule point"`).
    pub blocked_on: &'static str,
    /// The virtual time the wake would happen at (its due time, or the
    /// current instant if the event was already deferred past it).
    pub at: Time,
    /// Explicit label, when the wait is a tagged
    /// [`Runtime::schedule_point`].
    pub tag: Option<Arc<str>>,
}

impl Choice {
    /// A short human-readable label for traces and taxonomy: the explicit
    /// tag when present, otherwise `actor/blocked_on`.
    pub fn label(&self) -> String {
        match &self.tag {
            Some(t) => t.to_string(),
            None => format!("{}/{}", self.actor, self.blocked_on),
        }
    }
}

/// A pluggable scheduler for systematic exploration.
///
/// When installed via [`SimRuntime::set_schedule_hook`], the engine stops
/// waking same-window timers all at once in timestamp order. Instead, at
/// every instant where the clock must advance it collects *every* pending
/// event due within `window` of the earliest one and asks the hook which
/// to fire next; the chosen actor runs until it blocks again, then the
/// remaining (still-eligible) events plus any newly due ones form the next
/// choice point. Choosing index 0 always reproduces the default schedule:
/// eligible events are presented sorted by `(effective time, arm order)`.
///
/// `choose` is called with the engine lock held: it must not call back
/// into the runtime (no sleeps, spawns, or event ops) and should be a pure
/// function of its arguments plus the hook's own bookkeeping.
pub trait ScheduleHook: Send + Sync {
    /// Pick which of `eligible` (always ≥ 2 entries) fires next, by index.
    /// `fingerprint` hashes the engine state at this point (virtual time,
    /// every actor's name and block reason, the pending eligible set) for
    /// visited-state dedup.
    fn choose(&self, now: Time, fingerprint: u64, eligible: &[Choice]) -> usize;
}

struct ActorInfo {
    name: String,
    /// True while the actor counts toward `runnable`.
    counted: bool,
    /// What the actor is blocked on, for deadlock diagnostics.
    blocked_on: Option<&'static str>,
    /// Daemon actors (e.g. server connection handlers parked on their
    /// request channel) do not keep the simulation alive: when only daemons
    /// remain blocked and no timer is pending, they are unwound cleanly.
    daemon: bool,
}

#[derive(Default)]
struct EngineState {
    now: u64,
    runnable: usize,
    actors: HashMap<u64, ActorInfo>,
    next_actor: u64,
    timers: BinaryHeap<TimerEntry>,
    next_seq: u64,
    /// Every currently blocked slot, so a poisoned engine can wake them all.
    blocked_slots: HashMap<u64, Arc<WaitSlot>>,
    next_slot: u64,
    poisoned: bool,
    /// Human-readable cause of the poisoning (first panic / deadlock).
    poison_cause: String,
    clock_advances: u64,
    max_actors: usize,
    timers_armed: u64,
    /// Thread actors ever spawned (root + spawn + spawn_daemon).
    actors_spawned: u64,
    /// Event-driven tasks ever reported via [`Runtime::task_spawned`].
    tasks_spawned: u64,
    /// Currently live event-driven tasks.
    live_tasks: usize,
    /// Largest number of simultaneously live event-driven tasks.
    peak_live_tasks: usize,
    /// Systematic-exploration scheduler, if installed. `None` keeps the
    /// engine on the plain wake-everything-at-the-instant path.
    hook: Option<Arc<dyn ScheduleHook>>,
    /// Eligibility window (ns): pending events within this much of the
    /// earliest one are presented together as one choice point.
    hook_window: u64,
    /// Events pulled into an eligible set but not yet fired (the hook
    /// deferred them past their due time).
    deferred: Vec<TimerEntry>,
    /// Choice points faced (≥ 2 eligible events with a hook installed).
    choice_points: u64,
    /// Total alternatives across all choice points.
    choice_alternatives: u64,
}

struct Engine {
    state: Mutex<EngineState>,
    cond: Condvar,
}

impl Engine {
    fn current_actor(&self) -> u64 {
        CURRENT_ACTOR.with(|c| c.get()).unwrap_or_else(|| {
            panic!(
                "blocking SimRuntime operation called from a thread that is not a \
                 registered actor; spawn work via SimRuntime::spawn (or run_root)"
            )
        })
    }

    fn wake_locked(&self, st: &mut EngineState, slot: &Arc<WaitSlot>, reason: u8) {
        if slot.is_woken() {
            return;
        }
        slot.state.store(reason, AtOrd::Relaxed);
        if let Some(info) = st.actors.get_mut(&slot.actor) {
            if !info.counted {
                info.counted = true;
                info.blocked_on = None;
                st.runnable += 1;
            }
        }
        self.cond.notify_all();
    }

    /// Advance the clock while no actor is runnable. Must be called with the
    /// lock held, immediately after decrementing `runnable`.
    fn advance_locked(&self, st: &mut EngineState) {
        match st.hook.clone() {
            None => self.advance_plain_locked(st),
            Some(hook) => self.advance_hooked_locked(st, &hook),
        }
        if st.actors.is_empty() {
            // Simulation finished; release anyone in wait_done().
            self.cond.notify_all();
        }
    }

    /// The default schedule: jump to the earliest pending timer and wake
    /// every waiter due at exactly that instant at once.
    fn advance_plain_locked(&self, st: &mut EngineState) {
        while st.runnable == 0 && !st.actors.is_empty() {
            // Drop timers whose waiters were already woken by a signal.
            while st.timers.peek().map(|e| e.slot.is_woken()).unwrap_or(false) {
                st.timers.pop();
            }
            // Daemons do not keep the simulation alive: once every
            // non-daemon actor has exited, a daemon's pending timer (a
            // heartbeat loop, a periodic monitor) must not advance the
            // clock forever. Unwind instead.
            if st.timers.peek().is_none() || st.actors.values().all(|a| a.daemon) {
                self.quiesce_or_deadlock_locked(st);
                return;
            }
            let t = st.timers.peek().expect("checked above").at;
            debug_assert!(t >= st.now, "timer in the past");
            st.now = t;
            st.clock_advances += 1;
            while let Some(e) = st.timers.peek() {
                if e.at != t {
                    break;
                }
                let e = st.timers.pop().expect("peeked");
                let slot = e.slot;
                self.wake_locked(st, &slot, SLOT_TIMEOUT);
            }
        }
    }

    /// The exploration schedule: collect every pending event due within
    /// `hook_window` of the earliest, let the [`ScheduleHook`] pick one,
    /// fire only that, and re-collect when the woken actor blocks again.
    /// Events the hook passes over stay eligible (they fire late, at the
    /// chosen event's time) — that is exactly the delivery-order freedom a
    /// message-level model checker explores.
    fn advance_hooked_locked(&self, st: &mut EngineState, hook: &Arc<dyn ScheduleHook>) {
        while st.runnable == 0 && !st.actors.is_empty() {
            st.deferred.retain(|e| !e.slot.is_woken());
            while st.timers.peek().map(|e| e.slot.is_woken()).unwrap_or(false) {
                st.timers.pop();
            }
            // As in the plain schedule: pending daemon timers must not keep
            // a finished simulation spinning.
            if (st.deferred.is_empty() && st.timers.peek().is_none())
                || st.actors.values().all(|a| a.daemon)
            {
                self.quiesce_or_deadlock_locked(st);
                return;
            }
            // Earliest effective wake time over every pending event; a
            // deferred event's due time may be in the past, in which case
            // it would fire "now".
            let heap_min = st.timers.peek().map(|e| e.at);
            let def_min = st.deferred.iter().map(|e| e.at.max(st.now)).min();
            let base = match (heap_min, def_min) {
                (Some(h), Some(d)) => h.min(d),
                (Some(h), None) => h,
                (None, Some(d)) => d,
                (None, None) => unreachable!("pending set checked non-empty"),
            };
            let cutoff = base.saturating_add(st.hook_window);
            while let Some(e) = st.timers.peek() {
                if e.slot.is_woken() {
                    st.timers.pop();
                    continue;
                }
                if e.at > cutoff {
                    break;
                }
                let e = st.timers.pop().expect("peeked");
                st.deferred.push(e);
            }
            // Deterministic presentation order: index 0 is always what the
            // default schedule would fire next.
            let now = st.now;
            st.deferred.sort_by_key(|e| (e.at.max(now), e.seq));
            let idx = if st.deferred.len() == 1 {
                0
            } else {
                let eligible: Vec<Choice> = st
                    .deferred
                    .iter()
                    .map(|e| {
                        let info = st.actors.get(&e.slot.actor);
                        Choice {
                            actor: info.map(|a| a.name.clone()).unwrap_or_default(),
                            blocked_on: info.and_then(|a| a.blocked_on).unwrap_or("(exiting)"),
                            at: Time(e.at.max(now)),
                            tag: e.slot.tag.clone(),
                        }
                    })
                    .collect();
                st.choice_points += 1;
                st.choice_alternatives += eligible.len() as u64;
                let fp = fingerprint_locked(st);
                let i = hook.choose(Time(now), fp, &eligible);
                assert!(
                    i < eligible.len(),
                    "ScheduleHook chose {i} of {} eligible events",
                    eligible.len()
                );
                i
            };
            let e = st.deferred.remove(idx);
            let t = e.at.max(st.now);
            if t > st.now {
                st.now = t;
                st.clock_advances += 1;
            }
            self.wake_locked(st, &e.slot, SLOT_TIMEOUT);
        }
    }

    /// No pending event and nobody runnable: unwind cleanly if only parked
    /// daemons remain, otherwise report the deadlock and poison.
    fn quiesce_or_deadlock_locked(&self, st: &mut EngineState) {
        if st.actors.values().all(|a| a.daemon) {
            // Quiescence: only parked daemons remain. Unwind them
            // cleanly; the simulation is complete.
            let slots: Vec<_> = st.blocked_slots.values().cloned().collect();
            for s in slots {
                self.wake_locked(st, &s, SLOT_SHUTDOWN);
            }
            return;
        }
        let mut table = String::new();
        let mut actors: Vec<_> = st.actors.iter().collect();
        actors.sort_by_key(|(id, _)| **id);
        for (id, a) in actors {
            table.push_str(&format!(
                "\n  actor #{id} {:?}: blocked on {}",
                a.name,
                a.blocked_on.unwrap_or("(exiting)")
            ));
        }
        let msg = format!(
            "simulation deadlock at {}: every actor is blocked and no timer is pending{table}",
            Time(st.now)
        );
        self.poison_locked(st, &msg);
        panic!("{msg}");
    }

    fn poison_locked(&self, st: &mut EngineState, cause: &str) {
        if !st.poisoned {
            st.poisoned = true;
            st.poison_cause = cause.to_string();
        }
        let slots: Vec<_> = st.blocked_slots.values().cloned().collect();
        for s in slots {
            self.wake_locked(st, &s, SLOT_SIGNALED);
        }
        self.cond.notify_all();
    }

    /// Block the current actor on `slot`, with the engine lock already held.
    /// Returns the wake reason.
    fn block_locked(
        &self,
        st: &mut MutexGuard<'_, EngineState>,
        slot: &Arc<WaitSlot>,
        why: &'static str,
    ) -> Wake {
        if st.poisoned {
            panic!("simulation poisoned: {}", st.poison_cause);
        }
        let slot_id = st.next_slot;
        st.next_slot += 1;
        st.blocked_slots.insert(slot_id, slot.clone());
        {
            let info = st
                .actors
                .get_mut(&slot.actor)
                .expect("blocking actor not registered");
            debug_assert!(info.counted, "actor blocked twice");
            info.counted = false;
            info.blocked_on = Some(why);
        }
        st.runnable -= 1;
        if st.runnable == 0 {
            self.advance_locked(st);
        }
        while !slot.is_woken() {
            self.cond.wait(st);
        }
        st.blocked_slots.remove(&slot_id);
        if st.poisoned {
            panic!("simulation poisoned: {}", st.poison_cause);
        }
        match slot.state.load(AtOrd::Relaxed) {
            SLOT_SIGNALED => Wake::Signaled,
            SLOT_TIMEOUT => Wake::Timeout,
            SLOT_SHUTDOWN => std::panic::panic_any(ShutdownSignal),
            _ => unreachable!("woken slot left pending"),
        }
    }

    fn push_timer_locked(&self, st: &mut EngineState, at: u64, slot: Arc<WaitSlot>) {
        let seq = st.next_seq;
        st.next_seq += 1;
        st.timers_armed += 1;
        st.timers.push(TimerEntry { at, seq, slot });
    }

    fn schedule_point(&self, tag: &str) {
        let mut st = self.state.lock();
        // Without a hook this is free: no timer, no serialization, the
        // default path stays bit-identical.
        if st.hook.is_none() {
            return;
        }
        let slot = WaitSlot::tagged(self.current_actor(), tag);
        let at = st.now;
        self.push_timer_locked(&mut st, at, slot.clone());
        self.block_locked(&mut st, &slot, "schedule point");
    }

    fn actor_exit(&self, id: u64) {
        let mut st = self.state.lock();
        if let Some(info) = st.actors.remove(&id) {
            if info.counted {
                st.runnable -= 1;
            }
        }
        if st.runnable == 0 {
            self.advance_locked(&mut st);
        }
        self.cond.notify_all();
    }
}

/// Counters describing a finished (or running) simulation.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimStats {
    /// How many times the virtual clock hopped forward.
    pub clock_advances: u64,
    /// The largest number of concurrently registered actors.
    pub max_actors: usize,
    /// Thread actors ever spawned over the run — every one of these cost
    /// a real OS thread.
    pub actors_spawned: u64,
    /// The largest number of simultaneously live thread actors (alias of
    /// `max_actors`, named for symmetry with `peak_live_tasks`).
    pub peak_live_actors: usize,
    /// Event-driven tasks ever spawned on
    /// [`TaskExecutor`](crate::task::TaskExecutor)s bound to this runtime —
    /// these cost a state machine, not a thread.
    pub tasks_spawned: u64,
    /// The largest number of simultaneously live event-driven tasks.
    pub peak_live_tasks: usize,
    /// Timers armed over the run (sleeps plus timed waits); a proxy for how
    /// often actors re-armed completion timers after rate changes.
    pub timers_armed: u64,
    /// Scheduler choice points faced: instants where an installed
    /// [`ScheduleHook`] saw ≥ 2 eligible events. Always 0 on the default
    /// schedule (no hook), where simultaneity is resolved in arm order.
    pub choice_points: u64,
    /// Total eligible alternatives summed over all choice points — the
    /// exploration fan-out a model checker would face on this run.
    pub choice_alternatives: u64,
}

/// Hash the schedulable state of the engine: the instant, every actor's
/// name / runnability / block reason (as an order-independent multiset),
/// and the pending eligible set. Two runs that reach the same fingerprint
/// at a choice point are (to this abstraction) in the same state, so a
/// model checker can prune the repeat subtree.
fn fingerprint_locked(st: &EngineState) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut actors: Vec<(&str, bool, &str, bool)> = st
        .actors
        .values()
        .map(|a| {
            (
                a.name.as_str(),
                a.counted,
                a.blocked_on.unwrap_or("(exiting)"),
                a.daemon,
            )
        })
        .collect();
    actors.sort_unstable();
    let mut pending: Vec<(u64, &str)> = st
        .deferred
        .iter()
        .map(|e| {
            let label: &str = match &e.slot.tag {
                Some(t) => t,
                None => "",
            };
            (e.at.max(st.now) - st.now, label)
        })
        .collect();
    pending.sort_unstable();
    // Unkeyed DefaultHasher: deterministic across runs and processes (the
    // ShardMap / pool route-key idiom).
    let mut h = DefaultHasher::new();
    st.now.hash(&mut h);
    actors.hash(&mut h);
    pending.hash(&mut h);
    h.finish()
}

/// The virtual-time [`Runtime`]. See the module docs for the model.
pub struct SimRuntime {
    eng: Arc<Engine>,
}

impl Default for SimRuntime {
    fn default() -> Self {
        Self::new()
    }
}

impl SimRuntime {
    /// Create a fresh simulation with the clock at [`Time::ZERO`].
    pub fn new() -> SimRuntime {
        // Daemons left running at simulation end (server handlers, demux
        // loops) are unwound via `panic_any(ShutdownSignal)`; keep the
        // default hook from printing a backtrace for each of them.
        static QUIET_SHUTDOWN: std::sync::Once = std::sync::Once::new();
        QUIET_SHUTDOWN.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info.payload().downcast_ref::<ShutdownSignal>().is_some() {
                    return;
                }
                if QUIET_PANICS.load(AtOrd::SeqCst) {
                    return; // the model checker treats panics as results
                }
                prev(info);
            }));
        });
        SimRuntime {
            eng: Arc::new(Engine {
                state: Mutex::new(EngineState::default()),
                cond: Condvar::new(),
            }),
        }
    }

    /// A shareable `Arc<dyn Runtime>` handle.
    pub fn handle(&self) -> Arc<dyn Runtime> {
        Arc::new(SimRuntime {
            eng: self.eng.clone(),
        })
    }

    /// Block the *calling OS thread* (which must not be an actor) until every
    /// actor has exited.
    pub fn wait_done(&self) {
        let mut st = self.eng.state.lock();
        while !st.actors.is_empty() {
            self.eng.cond.wait(&mut st);
        }
    }

    /// Spawn `f` as the root actor, wait for the whole simulation to finish,
    /// and return `f`'s result. Panics from any actor propagate.
    pub fn run_root<T, F>(&self, f: F) -> T
    where
        T: Send + 'static,
        F: FnOnce(Arc<dyn Runtime>) -> T + Send + 'static,
    {
        let rt = self.handle();
        let out: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        let out2 = out.clone();
        let h = self.handle().spawn(
            "root",
            Box::new(move || {
                let v = f(rt);
                *out2.lock() = Some(v);
            }),
        );
        self.wait_done();
        h.join_unwrap();
        let v = out.lock().take();
        v.expect("root actor did not produce a value")
    }

    /// Simulation counters.
    pub fn stats(&self) -> SimStats {
        let st = self.eng.state.lock();
        SimStats {
            clock_advances: st.clock_advances,
            max_actors: st.max_actors,
            actors_spawned: st.actors_spawned,
            peak_live_actors: st.max_actors,
            tasks_spawned: st.tasks_spawned,
            peak_live_tasks: st.peak_live_tasks,
            timers_armed: st.timers_armed,
            choice_points: st.choice_points,
            choice_alternatives: st.choice_alternatives,
        }
    }

    /// Install a [`ScheduleHook`] for systematic exploration. `window` is
    /// the eligibility window: pending events due within `window` of the
    /// earliest one are presented together as one choice point, so the
    /// hook can reorder (delay) nearby events against each other. Install
    /// before spawning the workload; a window of zero still serializes
    /// exactly-simultaneous wakes through the hook.
    pub fn set_schedule_hook(&self, hook: Arc<dyn ScheduleHook>, window: Dur) {
        let mut st = self.eng.state.lock();
        st.hook = Some(hook);
        st.hook_window = window.as_nanos();
    }
}

/// One-shot helper: build a [`SimRuntime`], run `f` as the root actor, and
/// return its result once the simulation drains.
pub fn simulate<T, F>(f: F) -> T
where
    T: Send + 'static,
    F: FnOnce(Arc<dyn Runtime>) -> T + Send + 'static,
{
    SimRuntime::new().run_root(f)
}

impl Runtime for SimRuntime {
    fn now(&self) -> Time {
        Time(self.eng.state.lock().now)
    }

    fn sleep(&self, d: Dur) {
        if d.is_zero() {
            return;
        }
        let actor = self.eng.current_actor();
        let slot = WaitSlot::new(actor);
        let mut st = self.eng.state.lock();
        let at = st.now.saturating_add(d.as_nanos());
        self.eng.push_timer_locked(&mut st, at, slot.clone());
        self.eng.block_locked(&mut st, &slot, "sleep");
    }

    fn spawn(&self, name: &str, f: Box<dyn FnOnce() + Send + 'static>) -> JoinHandle {
        self.spawn_inner(name, f, false)
    }

    fn spawn_daemon(&self, name: &str, f: Box<dyn FnOnce() + Send + 'static>) -> JoinHandle {
        self.spawn_inner(name, f, true)
    }

    fn event(&self) -> Event {
        Arc::new(SimEvent {
            eng: self.eng.clone(),
            inner: Mutex::new(EventInner::default()),
        })
    }

    fn is_simulated(&self) -> bool {
        true
    }

    fn schedule_point(&self, tag: &str) {
        self.eng.schedule_point(tag);
    }

    fn task_spawned(&self) {
        let mut st = self.eng.state.lock();
        st.tasks_spawned += 1;
        st.live_tasks += 1;
        st.peak_live_tasks = st.peak_live_tasks.max(st.live_tasks);
    }

    fn task_finished(&self) {
        let mut st = self.eng.state.lock();
        st.live_tasks = st.live_tasks.saturating_sub(1);
    }
}

impl SimRuntime {
    fn spawn_inner(
        &self,
        name: &str,
        f: Box<dyn FnOnce() + Send + 'static>,
        daemon: bool,
    ) -> JoinHandle {
        let done = self.event();
        let (mut handle, exit) = JoinHandle::new(done);
        let id = {
            let mut st = self.eng.state.lock();
            if st.poisoned {
                panic!("cannot spawn into a poisoned simulation");
            }
            let id = st.next_actor;
            st.next_actor += 1;
            st.actors.insert(
                id,
                ActorInfo {
                    name: name.to_string(),
                    counted: true,
                    blocked_on: None,
                    daemon,
                },
            );
            st.runnable += 1;
            st.actors_spawned += 1;
            st.max_actors = st.max_actors.max(st.actors.len());
            id
        };
        let eng = self.eng.clone();
        let t = std::thread::Builder::new()
            .name(format!("sim:{name}"))
            .spawn(move || {
                CURRENT_ACTOR.with(|c| c.set(Some(id)));
                let r = catch_unwind(AssertUnwindSafe(f));
                let payload = match r {
                    Ok(()) => None,
                    Err(p) if p.is::<ShutdownSignal>() => None, // clean daemon unwind
                    Err(p) => {
                        // Poison so the rest of the simulation unwinds instead
                        // of hanging on events this actor will never signal.
                        let cause = p
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| p.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        let mut st = eng.state.lock();
                        eng.poison_locked(&mut st, &format!("panic in an actor: {cause}"));
                        Some(p)
                    }
                };
                // Publish completion *before* deregistering: a joiner must be
                // runnable again before our exit can trigger clock advance,
                // otherwise the engine would see a spurious deadlock.
                exit.finish(payload);
                eng.actor_exit(id);
            })
            .expect("spawn sim actor thread");
        handle.set_thread(t);
        handle
    }
}

#[derive(Default)]
struct EventInner {
    permits: usize,
    waiters: VecDeque<Arc<WaitSlot>>,
}

/// An [`Event`] bound to a virtual-time engine.
///
/// Lock order is strictly engine-state → event-inner; every method takes the
/// engine lock first, so the two locks can never deadlock against each other.
struct SimEvent {
    eng: Arc<Engine>,
    inner: Mutex<EventInner>,
}

impl EventApi for SimEvent {
    fn wait(&self) {
        let mut st = self.eng.state.lock();
        let slot = {
            let mut inner = self.inner.lock();
            if inner.permits > 0 {
                inner.permits -= 1;
                return;
            }
            // Only a registered actor may actually block; non-actor threads
            // (e.g. the harness thread joining after wait_done) succeed above
            // because the permit is already banked.
            let slot = WaitSlot::new(self.eng.current_actor());
            inner.waiters.push_back(slot.clone());
            slot
        };
        self.eng.block_locked(&mut st, &slot, "event wait");
    }

    fn wait_timeout(&self, d: Dur) -> Wake {
        let mut st = self.eng.state.lock();
        let slot = {
            let mut inner = self.inner.lock();
            if inner.permits > 0 {
                inner.permits -= 1;
                return Wake::Signaled;
            }
            if d.is_zero() {
                return Wake::Timeout;
            }
            let slot = WaitSlot::new(self.eng.current_actor());
            inner.waiters.push_back(slot.clone());
            slot
        };
        if d != Dur::MAX {
            let at = st.now.saturating_add(d.as_nanos());
            self.eng.push_timer_locked(&mut st, at, slot.clone());
        }
        self.eng
            .block_locked(&mut st, &slot, "event wait (timeout)")
    }

    fn signal(&self) {
        let mut st = self.eng.state.lock();
        let mut inner = self.inner.lock();
        loop {
            match inner.waiters.pop_front() {
                Some(w) if w.is_woken() => continue, // raced with a timeout
                Some(w) => {
                    self.eng.wake_locked(&mut st, &w, SLOT_SIGNALED);
                    return;
                }
                None => {
                    inner.permits += 1;
                    return;
                }
            }
        }
    }

    fn notify_all(&self) {
        let mut st = self.eng.state.lock();
        let mut inner = self.inner.lock();
        while let Some(w) = inner.waiters.pop_front() {
            self.eng.wake_locked(&mut st, &w, SLOT_SIGNALED);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::spawn;
    use std::sync::atomic::{AtomicUsize, Ordering as AO};

    #[test]
    fn sleep_advances_virtual_time_instantly() {
        let wall = std::time::Instant::now();
        let end = simulate(|rt| {
            rt.sleep(Dur::from_secs(3600));
            rt.now()
        });
        assert_eq!(end, Time::ZERO + Dur::from_secs(3600));
        assert!(wall.elapsed().as_secs() < 5, "virtual hour took wall time");
    }

    #[test]
    fn sleepers_wake_in_timestamp_order() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let o2 = order.clone();
        simulate(move |rt| {
            let mut hs = Vec::new();
            for (i, ms) in [(0u32, 30u64), (1, 10), (2, 20)] {
                let rt2 = rt.clone();
                let o = o2.clone();
                hs.push(spawn(&rt, &format!("s{i}"), move || {
                    rt2.sleep(Dur::from_millis(ms));
                    o.lock().push((i, rt2.now().as_nanos()));
                }));
            }
            for h in hs {
                h.join_unwrap();
            }
        });
        let got = order.lock().clone();
        let mut sorted = got.clone();
        sorted.sort_by_key(|&(_, t)| t);
        assert_eq!(got, sorted);
        assert_eq!(
            got.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![1, 2, 0]
        );
    }

    #[test]
    fn event_signal_wakes_waiter_without_time_passing() {
        let t = simulate(|rt| {
            let ev = rt.event();
            let ev2 = ev.clone();
            let rt2 = rt.clone();
            let h = spawn(&rt, "waiter", move || {
                ev2.wait();
                let _ = rt2.now();
            });
            rt.sleep(Dur::from_millis(5));
            ev.signal();
            h.join_unwrap();
            rt.now()
        });
        assert_eq!(t, Time::ZERO + Dur::from_millis(5));
    }

    #[test]
    fn event_permits_count() {
        simulate(|rt| {
            let ev = rt.event();
            ev.signal();
            ev.signal();
            assert_eq!(ev.wait_timeout(Dur::from_millis(1)), Wake::Signaled);
            assert_eq!(ev.wait_timeout(Dur::from_millis(1)), Wake::Signaled);
            assert_eq!(ev.wait_timeout(Dur::from_millis(1)), Wake::Timeout);
        });
    }

    #[test]
    fn wait_timeout_times_out_at_exact_virtual_instant() {
        let (start, end) = simulate(|rt| {
            let ev = rt.event();
            let s = rt.now();
            assert_eq!(ev.wait_timeout(Dur::from_millis(250)), Wake::Timeout);
            (s, rt.now())
        });
        assert_eq!(end - start, Dur::from_millis(250));
    }

    #[test]
    fn signal_beats_timeout() {
        simulate(|rt| {
            let ev = rt.event();
            let ev2 = ev.clone();
            let rt2 = rt.clone();
            let h = spawn(&rt, "signaller", move || {
                rt2.sleep(Dur::from_millis(10));
                ev2.signal();
            });
            assert_eq!(ev.wait_timeout(Dur::from_secs(100)), Wake::Signaled);
            assert_eq!(rt.now(), Time::ZERO + Dur::from_millis(10));
            h.join_unwrap();
        });
    }

    #[test]
    fn notify_all_releases_every_waiter() {
        let woken = Arc::new(AtomicUsize::new(0));
        let w2 = woken.clone();
        simulate(move |rt| {
            let ev = rt.event();
            let mut hs = Vec::new();
            for i in 0..8 {
                let ev2 = ev.clone();
                let w = w2.clone();
                hs.push(spawn(&rt, &format!("w{i}"), move || {
                    ev2.wait();
                    w.fetch_add(1, AO::SeqCst);
                }));
            }
            rt.sleep(Dur::from_millis(1)); // let them all block
            ev.notify_all();
            for h in hs {
                h.join_unwrap();
            }
        });
        assert_eq!(woken.load(AO::SeqCst), 8);
    }

    #[test]
    fn join_returns_after_child_exits() {
        let t = simulate(|rt| {
            let rt2 = rt.clone();
            let h = spawn(&rt, "child", move || {
                rt2.sleep(Dur::from_secs(2));
            });
            h.join_unwrap();
            rt.now()
        });
        assert_eq!(t, Time::ZERO + Dur::from_secs(2));
    }

    #[test]
    fn join_propagates_panic_payload() {
        let sim = SimRuntime::new();
        let rt = sim.handle();
        let h = rt.spawn(
            "panicker",
            Box::new(|| {
                panic!("boom-42");
            }),
        );
        sim.wait_done();
        let err = h.join().unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom-42");
    }

    #[test]
    fn daemons_do_not_block_completion() {
        // A "server" daemon parked forever on an event must not trip the
        // deadlock detector; the sim completes when the root finishes.
        let end = simulate(|rt| {
            let ev = rt.event();
            let rt2 = rt.clone();
            let _h = rt.spawn_daemon(
                "server-conn",
                Box::new(move || {
                    ev.wait(); // never signaled
                    let _ = rt2.now();
                }),
            );
            rt.sleep(Dur::from_millis(7));
            rt.now()
        });
        assert_eq!(end, Time::ZERO + Dur::from_millis(7));
    }

    #[test]
    fn daemon_loops_are_unwound_cleanly() {
        use crate::sync::Channel;
        let served = Arc::new(AtomicUsize::new(0));
        let s2 = served.clone();
        simulate(move |rt| {
            let ch: Channel<u32> = Channel::new(&rt);
            let ch2 = ch.clone();
            let s3 = s2.clone();
            rt.spawn_daemon(
                "handler",
                Box::new(move || {
                    while ch2.recv().is_ok() {
                        s3.fetch_add(1, AO::SeqCst);
                    }
                }),
            );
            for i in 0..5 {
                ch.send(i).unwrap();
            }
            rt.sleep(Dur::from_millis(1)); // let the daemon drain
        });
        assert_eq!(served.load(AO::SeqCst), 5);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected_and_reported() {
        simulate(|rt| {
            let ev = rt.event();
            ev.wait(); // nobody will ever signal
        });
    }

    #[test]
    fn many_actors_interleave_consistently() {
        // 20 actors each sleep 10 times; total virtual time is the max, and
        // every actor observes monotonically non-decreasing time.
        let end = simulate(|rt| {
            let mut hs = Vec::new();
            for i in 0..20u64 {
                let rt2 = rt.clone();
                hs.push(spawn(&rt, &format!("a{i}"), move || {
                    let mut last = rt2.now();
                    for _ in 0..10 {
                        rt2.sleep(Dur::from_micros(i + 1));
                        let now = rt2.now();
                        assert!(now >= last);
                        last = now;
                    }
                }));
            }
            for h in hs {
                h.join_unwrap();
            }
            rt.now()
        });
        assert_eq!(end, Time::ZERO + Dur::from_micros(200)); // 20µs * 10
    }

    #[test]
    fn stats_track_advances_and_actors() {
        let sim = SimRuntime::new();
        sim.run_root(|rt| {
            let rt2 = rt.clone();
            let h = spawn(&rt, "x", move || rt2.sleep(Dur::from_millis(1)));
            rt.sleep(Dur::from_millis(2));
            h.join_unwrap();
        });
        let s = sim.stats();
        assert!(s.clock_advances >= 2);
        assert!(s.max_actors >= 2);
        // Two sleeps arm two timers (timed waits would count here too).
        assert!(s.timers_armed >= 2, "{}", s.timers_armed);
    }

    #[test]
    fn zero_sleep_is_noop() {
        simulate(|rt| {
            rt.sleep(Dur::ZERO);
            assert_eq!(rt.now(), Time::ZERO);
        });
    }

    /// Always pick the default (earliest) eligible event.
    struct PickFirst;
    impl ScheduleHook for PickFirst {
        fn choose(&self, _now: Time, _fp: u64, _eligible: &[Choice]) -> usize {
            0
        }
    }

    /// Always defer as long as possible: pick the last eligible event.
    struct PickLast;
    impl ScheduleHook for PickLast {
        fn choose(&self, _now: Time, _fp: u64, eligible: &[Choice]) -> usize {
            eligible.len() - 1
        }
    }

    fn ordered_sleepers(
        hook: Option<(Arc<dyn ScheduleHook>, Dur)>,
        delays_us: Vec<u64>,
    ) -> (Vec<(usize, u64)>, SimStats) {
        let order = Arc::new(Mutex::new(Vec::new()));
        let o2 = order.clone();
        let sim = SimRuntime::new();
        if let Some((h, w)) = hook {
            sim.set_schedule_hook(h, w);
        }
        sim.run_root(move |rt| {
            let mut hs = Vec::new();
            for (i, us) in delays_us.into_iter().enumerate() {
                let rt2 = rt.clone();
                let o = o2.clone();
                hs.push(spawn(&rt, &format!("s{i}"), move || {
                    rt2.sleep(Dur::from_micros(us));
                    o.lock().push((i, rt2.now().as_nanos()));
                }));
            }
            for h in hs {
                h.join_unwrap();
            }
        });
        let stats = sim.stats();
        let got = order.lock().clone();
        (got, stats)
    }

    #[test]
    fn hook_default_choice_reproduces_plain_order() {
        let (mut plain, pstats) = ordered_sleepers(None, vec![30, 10, 10, 20]);
        let (mut hooked, hstats) =
            ordered_sleepers(Some((Arc::new(PickFirst), Dur::ZERO)), vec![30, 10, 10, 20]);
        // The plain schedule wakes same-instant sleepers together and lets
        // their OS threads race to the log; normalize simultaneous entries
        // so the comparison pins the schedule, not the thread lottery.
        plain.sort_by_key(|&(i, t)| (t, i));
        hooked.sort_by_key(|&(i, t)| (t, i));
        assert_eq!(
            plain, hooked,
            "picking index 0 must be the default schedule"
        );
        assert_eq!(pstats.choice_points, 0, "no hook, no choice points");
        // The two 10µs sleepers collide at one instant: one choice point
        // with two alternatives.
        assert_eq!(hstats.choice_points, 1);
        assert_eq!(hstats.choice_alternatives, 2);
    }

    #[test]
    fn hook_can_defer_events_within_the_window() {
        // 10µs and 12µs sleeps, 5µs window: both eligible together, and
        // PickLast fires the 12µs one first; the deferred 10µs event then
        // fires late, at t=12µs.
        let (got, stats) = ordered_sleepers(
            Some((Arc::new(PickLast), Dur::from_micros(5))),
            vec![10, 12],
        );
        assert_eq!(
            got,
            vec![
                (1, Dur::from_micros(12).as_nanos()),
                (0, Dur::from_micros(12).as_nanos()),
            ],
            "the passed-over event must fire late, not never"
        );
        assert!(stats.choice_points >= 1);
    }

    #[test]
    fn hook_window_excludes_far_events() {
        // 10µs and 200µs sleeps, 5µs window: never simultaneous, so even
        // PickLast cannot reorder them.
        let (got, stats) = ordered_sleepers(
            Some((Arc::new(PickLast), Dur::from_micros(5))),
            vec![10, 200],
        );
        assert_eq!(
            got.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![0, 1],
            "events outside the window keep their order"
        );
        assert_eq!(stats.choice_points, 0);
    }

    #[test]
    fn schedule_point_is_free_without_hook() {
        let sim = SimRuntime::new();
        let end = sim.run_root(|rt| {
            rt.schedule_point("noop");
            rt.now()
        });
        assert_eq!(end, Time::ZERO);
        assert_eq!(sim.stats().timers_armed, 0, "no hook, no timer");
    }

    #[test]
    fn schedule_point_is_explorable_under_a_hook() {
        // Two actors each pass a tagged schedule point "at the same time";
        // PickLast reverses their continuation order.
        let order = Arc::new(Mutex::new(Vec::new()));
        let o2 = order.clone();
        let sim = SimRuntime::new();
        sim.set_schedule_hook(Arc::new(PickLast), Dur::from_micros(5));
        sim.run_root(move |rt| {
            let mut hs = Vec::new();
            for i in 0..2 {
                let rt2 = rt.clone();
                let o = o2.clone();
                hs.push(spawn(&rt, &format!("p{i}"), move || {
                    rt2.sleep(Dur::from_micros(10));
                    rt2.schedule_point(&format!("point-{i}"));
                    o.lock().push(i);
                }));
            }
            for h in hs {
                h.join_unwrap();
            }
        });
        // PickLast fires sleeper 1 first; its schedule point re-enters the
        // eligible set against sleeper 0's wake, and PickLast keeps
        // deferring the earliest — actor 1 finishes first.
        assert_eq!(*order.lock(), vec![1, 0]);
    }
}
