//! The MPI-BLAST benchmark (paper §6, Fig. 6).
//!
//! A master rank manages the query file; workers request sequences, search
//! the database, and write ≈50 KB of output per query to independent remote
//! files using individual file pointers and non-collective calls. "The
//! asynchronous version of the code runs faster because it allows the
//! computation phase of one iteration to overlap with the I/O phase of the
//! previous iteration." The paper reports a 4:1 compute-to-I/O ratio, which
//! caps the expected improvement near 20 %, and measures 20–26 % across the
//! three clusters.
//!
//! (This is the Ohio State MPI-BLAST of the paper, not the LANL mpiBLAST.)

use std::sync::Arc;

use semplar::{File, OpenFlags, Payload, Request};
use semplar_clusters::{ClusterSpec, Testbed};
use semplar_mpi::run_world;
use semplar_runtime::Dur;

const TAG_REQ: u32 = 21;
const TAG_QRY: u32 = 22;

/// Benchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct BlastParams {
    /// Queries in the master's file (paper: 2,425 over a 256 MB database).
    pub queries: usize,
    /// Wire size of one query sequence (≈420 nt).
    pub query_bytes: u64,
    /// BLAST output per query (paper: ≈50 KB).
    pub result_bytes: u64,
    /// Database-search time per query, in reference-CPU seconds.
    pub compute_per_query: Dur,
    /// Use asynchronous writes with a one-deep pipeline.
    pub async_io: bool,
}

impl BlastParams {
    /// Parameters calibrated to the paper's regime on `spec`: the search
    /// time is set so the single-worker compute:I/O ratio is
    /// `compute_io_ratio` (the paper states 4:1 for MPI-BLAST).
    pub fn calibrated(spec: &ClusterSpec, queries: usize, compute_io_ratio: f64) -> BlastParams {
        let result_bytes: u64 = 50 * 1024;
        let io_est =
            spec.rtt().as_secs_f64() + result_bytes as f64 * 8.0 / spec.send_cap().as_bps();
        BlastParams {
            queries,
            query_bytes: 420,
            result_bytes,
            // `compute` charges reference-seconds; divide by speed to get
            // wall time, so multiply here to make wall time hit the ratio.
            compute_per_query: Dur::from_secs_f64(compute_io_ratio * io_est * spec.cpu_speed),
            async_io: false,
        }
    }

    /// Same parameters with asynchronous I/O enabled.
    pub fn with_async(mut self, yes: bool) -> Self {
        self.async_io = yes;
        self
    }
}

/// Timing from one MPI-BLAST run.
#[derive(Clone, Copy, Debug)]
pub struct BlastReport {
    /// Processes (1 master + n−1 workers).
    pub procs: usize,
    /// Whether asynchronous I/O was used.
    pub async_io: bool,
    /// Execution time, seconds.
    pub exec_secs: f64,
    /// Max per-worker time in the search phase.
    pub compute_secs: f64,
    /// Max per-worker time blocked on I/O.
    pub io_secs: f64,
}

/// Run MPI-BLAST with `n` processes (`n-1` workers) on `tb`.
pub fn run_blast(tb: &Arc<Testbed>, n: usize, p: BlastParams) -> BlastReport {
    assert!(n >= 2, "MPI-BLAST needs a master and at least one worker");
    assert!(n <= tb.nodes());
    let tb2 = tb.clone();
    let rt = tb.rt.clone();
    let t0 = rt.now();
    let phases = run_world(tb.topo.clone(), n, move |r| {
        let rt = r.runtime().clone();
        if r.rank == 0 {
            // Master: hand out queries until exhausted, then stop workers.
            let mut remaining = p.queries;
            let mut active = r.size - 1;
            while active > 0 {
                let (src, ()) = r.recv::<()>(None, TAG_REQ);
                if remaining > 0 {
                    remaining -= 1;
                    r.send(src, TAG_QRY, Some(remaining as u64), p.query_bytes);
                } else {
                    r.send(src, TAG_QRY, None::<u64>, 16);
                    active -= 1;
                }
            }
            return (0.0, 0.0);
        }
        // Worker: independent remote output file, one TCP connection.
        let fs = tb2.srbfs(r.rank);
        let f = File::open(
            &rt,
            &fs,
            &format!("/blast-out-{}", r.rank),
            OpenFlags::CreateRw,
        )
        .expect("open BLAST output");
        let mut compute = 0.0f64;
        let mut io = 0.0f64;
        let mut off = 0u64;
        let mut prev: Option<Request> = None;
        loop {
            r.send(0, TAG_REQ, (), 64);
            let (_, q) = r.recv::<Option<u64>>(Some(0), TAG_QRY);
            if q.is_none() {
                break;
            }
            let s = rt.now();
            tb2.compute(r.rank, p.compute_per_query);
            compute += (rt.now() - s).as_secs_f64();

            let s = rt.now();
            if p.async_io {
                // One-deep pipeline: wait for the previous result's write,
                // then issue this one — the previous write overlapped this
                // query's search.
                if let Some(pr) = prev.take() {
                    pr.wait().expect("blast write");
                }
                prev = Some(f.iwrite_at(off, Payload::sized(p.result_bytes)));
            } else {
                f.write_at(off, &Payload::sized(p.result_bytes))
                    .expect("blast write");
            }
            io += (rt.now() - s).as_secs_f64();
            off += p.result_bytes;
        }
        let s = rt.now();
        if let Some(pr) = prev.take() {
            pr.wait().expect("final blast write");
        }
        io += (rt.now() - s).as_secs_f64();
        f.close().expect("close BLAST output");
        (compute, io)
    });
    let exec = (rt.now() - t0).as_secs_f64();
    BlastReport {
        procs: n,
        async_io: p.async_io,
        exec_secs: exec,
        compute_secs: phases.iter().map(|p| p.0).fold(0.0, f64::max),
        io_secs: phases.iter().map(|p| p.1).fold(0.0, f64::max),
    }
}

// ---------------------------------------------------------------------------
// A real local-alignment kernel (seed-and-extend), used by the wall-clock
// examples and correctness tests. The virtual-time benchmark charges
// modelled search time instead.
// ---------------------------------------------------------------------------

/// A local alignment hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hit {
    /// Offset in the database.
    pub db_pos: usize,
    /// Offset in the query.
    pub query_pos: usize,
    /// Extended match length.
    pub len: usize,
}

/// A k-mer index over a database, reusable across queries (BLAST builds its
/// word index once per database, not once per query).
pub struct SeqIndex {
    db: Vec<u8>,
    k: usize,
    index: std::collections::HashMap<Vec<u8>, Vec<usize>>,
}

impl SeqIndex {
    /// Index every `k`-mer of `db`.
    pub fn new(db: Vec<u8>, k: usize) -> SeqIndex {
        assert!(k >= 1);
        let mut index: std::collections::HashMap<Vec<u8>, Vec<usize>> = Default::default();
        if db.len() >= k {
            for i in 0..=db.len() - k {
                index.entry(db[i..i + k].to_vec()).or_default().push(i);
            }
        }
        SeqIndex { db, k, index }
    }

    /// The indexed database.
    pub fn db(&self) -> &[u8] {
        &self.db
    }

    /// Seed-and-extend search: find all `k`-mer seeds of `query` and extend
    /// each greedily in both directions — the algorithmic skeleton of BLAST
    /// (word matching + ungapped extension).
    pub fn search(&self, query: &[u8]) -> Vec<Hit> {
        let (db, k) = (&self.db[..], self.k);
        if query.len() < k || db.len() < k {
            return Vec::new();
        }
        let mut hits = Vec::new();
        let mut qi = 0;
        while qi + k <= query.len() {
            if let Some(positions) = self.index.get(&query[qi..qi + k]) {
                for &di in positions {
                    // Extend left.
                    let mut l = 0;
                    while di > l && qi > l && db[di - l - 1] == query[qi - l - 1] {
                        l += 1;
                    }
                    // Extend right.
                    let mut r = k;
                    while di + r < db.len() && qi + r < query.len() && db[di + r] == query[qi + r] {
                        r += 1;
                    }
                    hits.push(Hit {
                        db_pos: di - l,
                        query_pos: qi - l,
                        len: l + r,
                    });
                }
            }
            qi += 1;
        }
        // Deduplicate extensions that converged to the same interval.
        hits.sort_by_key(|h| (h.db_pos, h.query_pos, h.len));
        hits.dedup();
        hits
    }
}

/// One-shot convenience over [`SeqIndex`] (tests, tiny inputs).
pub fn seed_and_extend(db: &[u8], query: &[u8], k: usize) -> Vec<Hit> {
    SeqIndex::new(db.to_vec(), k).search(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semplar_clusters::{das2, osc, tg_ncsa, Testbed};
    use semplar_runtime::simulate;

    fn quick(spec: &ClusterSpec, async_io: bool) -> BlastParams {
        BlastParams::calibrated(spec, 60, 4.0).with_async(async_io)
    }

    #[test]
    fn async_gains_near_twenty_percent_on_all_clusters() {
        for spec in [das2(), osc(), tg_ncsa()] {
            let name = spec.name;
            let (sync, asy) = simulate(move |rt| {
                let tb = Testbed::new(rt, spec.clone(), 4);
                (
                    run_blast(&tb, 4, quick(&spec, false)),
                    run_blast(&tb, 4, quick(&spec, true)),
                )
            });
            let gain = 1.0 - asy.exec_secs / sync.exec_secs;
            assert!(
                (0.10..=0.30).contains(&gain),
                "{name}: async gain {gain:.3} outside the paper band \
                 (sync {:.1}s async {:.1}s)",
                sync.exec_secs,
                asy.exec_secs
            );
        }
    }

    #[test]
    fn more_workers_shorten_execution() {
        let (p3, p6) = simulate(|rt| {
            let tb = Testbed::new(rt, das2(), 6);
            (
                run_blast(&tb, 3, quick(&das2(), false)),
                run_blast(&tb, 6, quick(&das2(), false)),
            )
        });
        assert!(
            p6.exec_secs < p3.exec_secs * 0.6,
            "p3 {:.1}s p6 {:.1}s",
            p3.exec_secs,
            p6.exec_secs
        );
    }

    #[test]
    fn compute_io_ratio_is_calibrated() {
        let rep = simulate(|rt| {
            let tb = Testbed::new(rt, das2(), 2);
            run_blast(&tb, 2, quick(&das2(), false))
        });
        let ratio = rep.compute_secs / rep.io_secs;
        assert!(
            (3.0..=5.0).contains(&ratio),
            "compute:io = {ratio:.2}, calibrated for 4:1"
        );
    }

    #[test]
    fn achieved_overlap_exceeds_ninety_percent_of_maximum() {
        // §7.1: expected best = max(compute, io); the paper achieves 92-97%
        // of that bound.
        let (sync, asy) = simulate(|rt| {
            let tb = Testbed::new(rt, tg_ncsa(), 5);
            (
                run_blast(&tb, 5, quick(&tg_ncsa(), false)),
                run_blast(&tb, 5, quick(&tg_ncsa(), true)),
            )
        });
        let expected = sync.compute_secs.max(sync.io_secs);
        let max_speedup = sync.exec_secs / expected;
        let achieved = sync.exec_secs / asy.exec_secs;
        let fraction = achieved / max_speedup;
        assert!(
            fraction > 0.85,
            "achieved {achieved:.3}x of max {max_speedup:.3}x = {fraction:.2}"
        );
    }

    #[test]
    fn seed_and_extend_finds_planted_alignment() {
        let db = b"TTTTTTTTTTGATTACAGATTACATTTTTTTTTT";
        let query = b"CCCGATTACAGATTACACCC";
        let hits = seed_and_extend(db, query, 8);
        assert!(!hits.is_empty());
        let best = hits.iter().max_by_key(|h| h.len).unwrap();
        assert_eq!(best.len, 14);
        assert_eq!(&db[best.db_pos..best.db_pos + best.len], b"GATTACAGATTACA");
    }

    #[test]
    fn seed_and_extend_handles_no_match_and_short_inputs() {
        assert!(seed_and_extend(b"AAAA", b"GGGG", 4).is_empty());
        assert!(seed_and_extend(b"A", b"GATTACA", 4).is_empty());
        assert!(seed_and_extend(b"GATTACA", b"A", 4).is_empty());
    }
}
