//! The storage vault: where data objects physically live.
//!
//! A vault couples an object store with a disk model — a single shared
//! bandwidth resource plus a per-operation seek latency, so concurrent
//! connection handlers contend for the spindle the way SEMPLAR's parallel
//! TCP streams contend for `orion`'s storage backend.
//!
//! Objects store either real bytes or a sparse size-only extent, mirroring
//! [`crate::types::Payload`] — the timing model only needs sizes,
//! but correctness tests and the compression pipeline round-trip real data.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use semplar_netsim::{Bw, LinkId, Network};
use semplar_runtime::{Dur, Runtime};

use crate::types::Payload;

enum ObjData {
    Real(Vec<u8>),
    Sparse(u64),
}

impl ObjData {
    fn len(&self) -> u64 {
        match self {
            ObjData::Real(v) => v.len() as u64,
            ObjData::Sparse(n) => *n,
        }
    }
}

/// Disk performance parameters.
#[derive(Clone, Copy, Debug)]
pub struct DiskSpec {
    /// Sustained transfer bandwidth shared by all concurrent operations.
    pub bandwidth: Bw,
    /// Fixed positioning cost charged per operation.
    pub seek: Dur,
    /// Concurrency degradation (the dslab-storage `shared_disk` idiom):
    /// with `k` operations in flight, the spindle sustains an *aggregate*
    /// of `bandwidth / (1 + degradation · (k − 1))` — extra seeks and
    /// queue thrash eat into the streaming rate as concurrency grows. Each
    /// operation samples `k` at its start and is capped at its `1/k` share
    /// of that degraded aggregate for its whole transfer, which keeps the
    /// model deterministic. `0.0` (the default) disables the cap entirely:
    /// concurrent operations share the full bandwidth max-min fairly,
    /// bit-identical to the pre-degradation model.
    pub degradation: f64,
}

impl Default for DiskSpec {
    fn default() -> Self {
        DiskSpec {
            // A 2006-era high-end storage array.
            bandwidth: Bw::mbyte_per_s(400.0),
            seek: Dur::from_micros(500),
            degradation: 0.0,
        }
    }
}

/// An object store with a modelled disk.
pub struct Vault {
    rt: Arc<dyn Runtime>,
    disk_net: Arc<Network>,
    disk: LinkId,
    spec: DiskSpec,
    /// Disk operations currently in flight (seek + transfer), sampled by
    /// each arriving operation to derive its concurrency-degraded cap.
    in_flight: AtomicUsize,
    objects: Mutex<HashMap<u64, ObjData>>,
}

impl Vault {
    /// Create a vault with the given disk characteristics.
    pub fn new(rt: Arc<dyn Runtime>, spec: DiskSpec) -> Arc<Vault> {
        let disk_net = Network::new(rt.clone());
        let disk = disk_net.add_link("disk", spec.bandwidth, Dur::ZERO);
        Arc::new(Vault {
            rt,
            disk_net,
            disk,
            spec,
            in_flight: AtomicUsize::new(0),
            objects: Mutex::new(HashMap::new()),
        })
    }

    /// The disk characteristics this vault was built with.
    pub fn spec(&self) -> DiskSpec {
        self.spec
    }

    /// The per-operation bandwidth cap for an operation that starts with
    /// `k` operations in flight (itself included): its `1/k` share of the
    /// concurrency-degraded aggregate. `None` when no degradation is
    /// configured or the operation runs alone — the shared link's max-min
    /// fairness is then the whole model, exactly as before.
    fn concurrency_cap(&self, k: usize) -> Option<Bw> {
        if self.spec.degradation <= 0.0 || k <= 1 {
            return None;
        }
        let aggregate =
            self.spec.bandwidth.as_bps() / (1.0 + self.spec.degradation * (k as f64 - 1.0));
        Some(Bw::bps(aggregate / k as f64))
    }

    fn charge_disk(&self, bytes: u64) {
        let k = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        self.rt.sleep(self.spec.seek);
        self.disk_net
            .transfer(&[self.disk], bytes, self.concurrency_cap(k));
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Fault injection: occupy the disk with `bytes` of competing traffic,
    /// charged to the calling actor. While this drains, concurrent vault
    /// reads and writes share the disk link max-min fairly with it — the
    /// "slow vault" fault — and speed back up the moment it completes.
    pub fn inject_load(&self, bytes: u64) {
        self.charge_disk(bytes);
    }

    /// Allocate an empty object slot.
    pub fn create(&self, obj_id: u64) {
        self.objects
            .lock()
            .insert(obj_id, ObjData::Real(Vec::new()));
    }

    /// Write `payload` at `offset`, charging disk time. Returns the new
    /// object size.
    pub fn write(&self, obj_id: u64, offset: u64, payload: &Payload) -> u64 {
        self.charge_disk(payload.len());
        let mut g = self.objects.lock();
        let obj = g.entry(obj_id).or_insert(ObjData::Real(Vec::new()));
        let end = offset + payload.len();
        match (payload.data(), &mut *obj) {
            (Some(data), ObjData::Real(v)) => {
                if (v.len() as u64) < end {
                    v.resize(end as usize, 0);
                }
                v[offset as usize..end as usize].copy_from_slice(data);
            }
            // Any size-only write degrades the object to a sparse extent:
            // the big bandwidth sweeps never read data back byte-for-byte.
            _ => {
                let new_len = obj.len().max(end);
                *obj = ObjData::Sparse(new_len);
            }
        }
        obj.len()
    }

    /// Read `len` bytes at `offset`, charging disk time. Reads past the end
    /// are truncated, POSIX-style.
    pub fn read(&self, obj_id: u64, offset: u64, len: u64) -> Payload {
        let out = {
            let g = self.objects.lock();
            match g.get(&obj_id) {
                None => Payload::sized(0),
                Some(ObjData::Real(v)) => {
                    let start = (offset as usize).min(v.len());
                    let end = ((offset + len) as usize).min(v.len());
                    Payload::bytes(v[start..end].to_vec())
                }
                Some(ObjData::Sparse(n)) => {
                    let avail = n.saturating_sub(offset).min(len);
                    Payload::sized(avail)
                }
            }
        };
        self.charge_disk(out.len());
        out
    }

    /// Write a packed list of extents in one vault pass: one seek plus one
    /// disk transfer for the packed bytes, instead of a seek per extent.
    /// `payload` holds the extents' data back-to-back in list order; its
    /// length must match the sum of the extent lengths. Returns the new
    /// object size.
    pub fn write_list(&self, obj_id: u64, extents: &[(u64, u64)], payload: &Payload) -> u64 {
        self.charge_disk(payload.len());
        let mut g = self.objects.lock();
        let obj = g.entry(obj_id).or_insert(ObjData::Real(Vec::new()));
        let mut cursor = 0u64;
        for &(offset, len) in extents {
            let piece = payload.slice(cursor, len);
            cursor += len;
            let end = offset + piece.len();
            match (piece.data(), &mut *obj) {
                (Some(data), ObjData::Real(v)) => {
                    if (v.len() as u64) < end {
                        v.resize(end as usize, 0);
                    }
                    v[offset as usize..end as usize].copy_from_slice(data);
                }
                // Same degradation rule as single writes: any size-only
                // piece turns the object into a sparse extent.
                _ => {
                    let new_len = obj.len().max(end);
                    *obj = ObjData::Sparse(new_len);
                }
            }
        }
        obj.len()
    }

    /// Read a list of extents in one vault pass, packing the results
    /// back-to-back in list order (each extent truncated at EOF,
    /// POSIX-style). One seek plus one disk transfer for the packed bytes.
    pub fn read_list(&self, obj_id: u64, extents: &[(u64, u64)]) -> Payload {
        let out = {
            let g = self.objects.lock();
            match g.get(&obj_id) {
                None => Payload::sized(0),
                Some(ObjData::Real(v)) => {
                    let mut packed = Vec::new();
                    for &(offset, len) in extents {
                        let start = (offset as usize).min(v.len());
                        let end = ((offset + len) as usize).min(v.len());
                        packed.extend_from_slice(&v[start..end]);
                    }
                    Payload::bytes(packed)
                }
                Some(ObjData::Sparse(n)) => {
                    let total: u64 = extents
                        .iter()
                        .map(|&(offset, len)| n.saturating_sub(offset).min(len))
                        .sum();
                    Payload::sized(total)
                }
            }
        };
        self.charge_disk(out.len());
        out
    }

    /// Read several extents in one vault pass, returning one payload per
    /// extent (each truncated at EOF, POSIX-style) but charging a single
    /// seek plus one disk transfer for the combined bytes. This is the
    /// block-cache miss path: a cache fill wants the missing blocks as
    /// separate payloads without paying a seek per block.
    pub fn read_extents(&self, obj_id: u64, extents: &[(u64, u64)]) -> Vec<Payload> {
        let out: Vec<Payload> = {
            let g = self.objects.lock();
            extents
                .iter()
                .map(|&(offset, len)| match g.get(&obj_id) {
                    None => Payload::sized(0),
                    Some(ObjData::Real(v)) => {
                        let start = (offset as usize).min(v.len());
                        let end = ((offset + len) as usize).min(v.len());
                        Payload::bytes(v[start..end].to_vec())
                    }
                    Some(ObjData::Sparse(n)) => {
                        let avail = n.saturating_sub(offset).min(len);
                        Payload::sized(avail)
                    }
                })
                .collect()
        };
        let total: u64 = out.iter().map(|p| p.len()).sum();
        self.charge_disk(total);
        out
    }

    /// Adler-32 of a whole object, charging a full disk read. Errors on
    /// sparse (size-only) objects — there are no bytes to sum.
    pub fn checksum(&self, obj_id: u64) -> Result<u32, crate::types::SrbError> {
        let data = {
            let g = self.objects.lock();
            match g.get(&obj_id) {
                None | Some(ObjData::Real(_)) => g.get(&obj_id).and_then(|o| match o {
                    ObjData::Real(v) => Some(v.clone()),
                    ObjData::Sparse(_) => None,
                }),
                Some(ObjData::Sparse(_)) => {
                    return Err(crate::types::SrbError::InvalidArg(
                        "cannot checksum a sparse (size-only) object".into(),
                    ))
                }
            }
        };
        let data = data.unwrap_or_default();
        self.charge_disk(data.len() as u64);
        Ok(crate::types::adler32(&data))
    }

    /// Current size of an object (0 if absent).
    pub fn size(&self, obj_id: u64) -> u64 {
        self.objects.lock().get(&obj_id).map_or(0, |o| o.len())
    }

    /// Drop an object's storage.
    pub fn remove(&self, obj_id: u64) {
        self.objects.lock().remove(&obj_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semplar_runtime::simulate;

    fn test_vault(rt: Arc<dyn Runtime>) -> Arc<Vault> {
        Vault::new(
            rt,
            DiskSpec {
                bandwidth: Bw::mbyte_per_s(100.0),
                seek: Dur::from_millis(1),
                ..DiskSpec::default()
            },
        )
    }

    #[test]
    fn write_then_read_roundtrips_real_data() {
        simulate(|rt| {
            let v = test_vault(rt);
            v.create(1);
            v.write(1, 0, &Payload::bytes(vec![1, 2, 3, 4]));
            v.write(1, 2, &Payload::bytes(vec![9, 9]));
            let r = v.read(1, 0, 4);
            assert_eq!(r.data().unwrap(), &[1, 2, 9, 9]);
        });
    }

    #[test]
    fn read_past_end_truncates() {
        simulate(|rt| {
            let v = test_vault(rt);
            v.create(1);
            v.write(1, 0, &Payload::bytes(vec![5; 10]));
            assert_eq!(v.read(1, 8, 100).len(), 2);
            assert_eq!(v.read(1, 50, 10).len(), 0);
        });
    }

    #[test]
    fn sparse_writes_track_extent_only() {
        simulate(|rt| {
            let v = test_vault(rt);
            v.create(2);
            v.write(2, 1_000_000, &Payload::sized(500_000));
            assert_eq!(v.size(2), 1_500_000);
            let r = v.read(2, 0, 2_000_000);
            assert_eq!(r.len(), 1_500_000);
            assert!(r.data().is_none());
        });
    }

    #[test]
    fn disk_time_is_charged() {
        let elapsed = simulate(|rt| {
            let v = test_vault(rt.clone());
            v.create(1);
            let t0 = rt.now();
            // 100 MB at 100 MB/s + 1 ms seek = ~1.001 s
            v.write(1, 0, &Payload::sized(100_000_000));
            rt.now() - t0
        });
        assert!((elapsed.as_secs_f64() - 1.001).abs() < 1e-6, "{elapsed}");
    }

    #[test]
    fn concurrent_writers_share_disk_bandwidth() {
        let elapsed = simulate(|rt| {
            let v = test_vault(rt.clone());
            let t0 = rt.now();
            let mut hs = Vec::new();
            for i in 0..2u64 {
                let v2 = v.clone();
                hs.push(semplar_runtime::spawn(&rt, &format!("w{i}"), move || {
                    v2.write(i, 0, &Payload::sized(50_000_000));
                }));
            }
            for h in hs {
                h.join_unwrap();
            }
            rt.now() - t0
        });
        // 2 × 50 MB on a shared 100 MB/s disk ≈ 1 s (+ seeks).
        assert!((elapsed.as_secs_f64() - 1.001).abs() < 1e-3, "{elapsed}");
    }

    #[test]
    fn degradation_halves_aggregate_for_two_writers() {
        let elapsed = simulate(|rt| {
            let v = Vault::new(
                rt.clone(),
                DiskSpec {
                    bandwidth: Bw::mbyte_per_s(100.0),
                    seek: Dur::from_millis(1),
                    degradation: 1.0,
                },
            );
            let t0 = rt.now();
            let mut hs = Vec::new();
            for i in 0..2u64 {
                let v2 = v.clone();
                hs.push(semplar_runtime::spawn(&rt, &format!("w{i}"), move || {
                    v2.write(i, 0, &Payload::sized(50_000_000));
                }));
            }
            for h in hs {
                h.join_unwrap();
            }
            rt.now() - t0
        });
        // degradation 1.0 with k=2 halves the aggregate to 50 MB/s, so each
        // writer gets a 25 MB/s cap: 50 MB each ≈ 2 s (+ seeks). The second
        // writer starts while the first is mid-seek (in_flight already 1),
        // so both sample k=2.
        assert!((elapsed.as_secs_f64() - 2.001).abs() < 1e-3, "{elapsed}");
    }

    #[test]
    fn degradation_zero_is_bit_identical_to_fair_sharing() {
        let elapsed = simulate(|rt| {
            let v = test_vault(rt.clone());
            let t0 = rt.now();
            let mut hs = Vec::new();
            for i in 0..2u64 {
                let v2 = v.clone();
                hs.push(semplar_runtime::spawn(&rt, &format!("w{i}"), move || {
                    v2.write(i, 0, &Payload::sized(50_000_000));
                }));
            }
            for h in hs {
                h.join_unwrap();
            }
            rt.now() - t0
        });
        assert!((elapsed.as_secs_f64() - 1.001).abs() < 1e-3, "{elapsed}");
    }

    #[test]
    fn single_op_never_degraded() {
        let elapsed = simulate(|rt| {
            let v = Vault::new(
                rt.clone(),
                DiskSpec {
                    bandwidth: Bw::mbyte_per_s(100.0),
                    seek: Dur::from_millis(1),
                    degradation: 4.0,
                },
            );
            v.create(1);
            let t0 = rt.now();
            v.write(1, 0, &Payload::sized(100_000_000));
            rt.now() - t0
        });
        // Alone on the disk, degradation never applies: still ~1.001 s.
        assert!((elapsed.as_secs_f64() - 1.001).abs() < 1e-6, "{elapsed}");
    }

    #[test]
    fn read_extents_matches_per_extent_reads_with_one_seek() {
        simulate(|rt| {
            let v = test_vault(rt.clone());
            v.create(1);
            v.write(1, 0, &Payload::bytes((0..100u8).collect()));
            let t0 = rt.now();
            let parts = v.read_extents(1, &[(0, 10), (50, 20), (95, 30)]);
            let took = rt.now() - t0;
            assert_eq!(parts.len(), 3);
            assert_eq!(parts[0].data().unwrap(), &(0..10u8).collect::<Vec<_>>()[..]);
            assert_eq!(
                parts[1].data().unwrap(),
                &(50..70u8).collect::<Vec<_>>()[..]
            );
            // Last extent truncated at EOF.
            assert_eq!(
                parts[2].data().unwrap(),
                &(95..100u8).collect::<Vec<_>>()[..]
            );
            // One seek (1 ms) for the whole list, not one per extent.
            assert!(took < Dur::from_millis(2), "{took}");
        });
    }

    #[test]
    fn remove_frees_object() {
        simulate(|rt| {
            let v = test_vault(rt);
            v.create(1);
            v.write(1, 0, &Payload::sized(10));
            v.remove(1);
            assert_eq!(v.size(1), 0);
            assert_eq!(v.read(1, 0, 10).len(), 0);
        });
    }
}
