//! Small-scale versions of every figure, asserting the paper's qualitative
//! claims: who wins, in which direction, and where the crossovers are.
//! (The full-scale tables come from `cargo bench` / the `fig*` binaries.)

use semplar_repro::clusters::{das2, osc, tg_ncsa, Testbed};
use semplar_repro::runtime::simulate;
use semplar_repro::workloads::{
    run_blast, run_compress, run_laplace, run_perf, BlastParams, CompressMode, CompressParams,
    LaplaceMode, LaplaceParams, PerfParams,
};
use std::sync::Arc;

#[test]
fn fig6_async_blast_wins_everywhere_and_scaling_holds() {
    for spec in [das2(), osc(), tg_ncsa()] {
        let name = spec.name;
        let spec2 = spec.clone();
        let rows = simulate(move |rt| {
            let tb = Testbed::new(rt, spec2.clone(), 8);
            let mut out = Vec::new();
            for n in [2usize, 4, 8] {
                let base = BlastParams::calibrated(&spec2, 80, 4.0);
                let s = run_blast(&tb, n, base.with_async(false));
                let a = run_blast(&tb, n, base.with_async(true));
                out.push((n, s.exec_secs, a.exec_secs));
            }
            out
        });
        for (n, s, a) in &rows {
            assert!(
                a < s,
                "{name} n={n}: async {a:.1}s should beat sync {s:.1}s"
            );
        }
        // Execution time decreases with more processors (paper Fig. 6).
        assert!(
            rows[2].1 < rows[0].1 && rows[2].2 < rows[0].2,
            "{name}: no scaling"
        );
    }
}

#[test]
fn fig7_ordering_on_das2_two_streams_beat_overlap_beats_sync() {
    let (sync1, over1, two) = simulate(|rt| {
        let tb = Testbed::new(rt, das2(), 2);
        let p = |mode, streams| LaplaceParams {
            grid: 901,
            mode,
            streams,
            ..LaplaceParams::default()
        };
        (
            run_laplace(&tb, 2, p(LaplaceMode::Sync, 1)).exec_secs,
            run_laplace(&tb, 2, p(LaplaceMode::AsyncOverlap, 1)).exec_secs,
            run_laplace(&tb, 2, p(LaplaceMode::Sync, 2)).exec_secs,
        )
    });
    assert!(
        over1 < sync1,
        "overlap must beat sync ({over1:.1} vs {sync1:.1})"
    );
    assert!(
        two < over1,
        "two streams must beat overlap ({two:.1} vs {over1:.1})"
    );
    // The overlap gain is bounded by the 9:1 I/O:compute ratio.
    let gain = 1.0 - over1 / sync1;
    assert!(
        gain < 0.15,
        "overlap gain {gain:.2} too large for a 9:1 ratio"
    );
}

#[test]
fn fig7_osc_nat_erases_two_stream_gains_at_scale() {
    let (two_gain_small, two_gain_large) = simulate(|rt| {
        let tb = Testbed::new(rt, osc(), 8);
        let p = |streams, n: usize| {
            let r = run_laplace(
                &tb,
                n,
                LaplaceParams {
                    grid: 901,
                    streams,
                    ..LaplaceParams::default()
                },
            );
            r.exec_secs
        };
        let g_small = 1.0 - p(2, 2) / p(1, 2);
        let g_large = 1.0 - p(2, 8) / p(1, 8);
        (g_small, g_large)
    });
    // At 8 procs the NAT is saturated: the second stream buys nothing.
    assert!(
        two_gain_large < 0.05,
        "NAT-bound two-stream gain should vanish, got {two_gain_large:.2}"
    );
    assert!(two_gain_small > two_gain_large - 1e-9);
}

#[test]
fn fig8_read_gains_exceed_write_gains() {
    // The receiver window is smaller than the send window, so doubling
    // streams helps reads more — on both measured clusters.
    for spec in [das2(), tg_ncsa()] {
        let name = spec.name;
        let (w1, r1, w2, r2) = simulate(move |rt| {
            let tb = Testbed::new(rt, spec, 4);
            let one = run_perf(
                &tb,
                4,
                PerfParams {
                    bytes_per_proc: 4 << 20,
                    streams: 1,
                },
            );
            let two = run_perf(
                &tb,
                4,
                PerfParams {
                    bytes_per_proc: 4 << 20,
                    streams: 2,
                },
            );
            (one.write_mbps, one.read_mbps, two.write_mbps, two.read_mbps)
        });
        assert!(
            r1 < w1,
            "{name}: reads should be slower than writes on one stream"
        );
        let wgain = w2 / w1;
        let rgain = r2 / r1;
        assert!(
            wgain > 1.5 && rgain > 1.5,
            "{name}: gains too small {wgain:.2}/{rgain:.2}"
        );
    }
}

#[test]
fn fig9_async_compression_wins_and_ratio_is_real() {
    let data = Arc::new(semplar_repro::workloads::estgen::generate(
        4 << 20,
        77,
        &semplar_repro::workloads::estgen::EstGenConfig::default(),
    ));
    for spec in [das2(), tg_ncsa()] {
        let name = spec.name;
        let d2 = data.clone();
        let (sync_bw, async_bw, ratio) = simulate(move |rt| {
            let tb = Testbed::new(rt, spec, 2);
            let p = |mode| CompressParams {
                file_bytes: 4 << 20,
                mode,
                ..CompressParams::default()
            };
            let s = run_compress(&tb, 2, d2.clone(), p(CompressMode::SyncUncompressed));
            let a = run_compress(&tb, 2, d2.clone(), p(CompressMode::AsyncCompressed));
            (s.agg_write_mbps, a.agg_write_mbps, a.ratio)
        });
        assert!(
            async_bw > sync_bw * 1.4,
            "{name}: async-compressed {async_bw:.1} vs sync {sync_bw:.1} Mb/s"
        );
        assert!((0.35..0.75).contains(&ratio), "{name}: ratio {ratio}");
    }
}

#[test]
fn contention_anomaly_and_its_fix() {
    let (overlap, two, combined, restructured) = simulate(|rt| {
        let tb = Testbed::new(rt, das2(), 2);
        let p = |mode, streams| LaplaceParams {
            grid: 901,
            checkpoints: 5,
            mode,
            streams,
            ..LaplaceParams::default()
        };
        (
            run_laplace(&tb, 2, p(LaplaceMode::AsyncOverlap, 1)).exec_secs,
            run_laplace(&tb, 2, p(LaplaceMode::Sync, 2)).exec_secs,
            run_laplace(&tb, 2, p(LaplaceMode::AsyncOverlap, 2)).exec_secs,
            run_laplace(&tb, 2, p(LaplaceMode::AsyncNoCommOverlap, 2)).exec_secs,
        )
    });
    // The naive combination loses (almost) all of the two-stream benefit...
    assert!(
        combined > overlap * 0.8,
        "combined {combined:.1}s should degrade to ~overlap-alone {overlap:.1}s"
    );
    // ...and the restructured version recovers the two-stream time.
    assert!(
        (restructured - two).abs() / two < 0.1,
        "restructured {restructured:.1}s should match two-stream {two:.1}s"
    );
}
