//! The rank world: spawn, point-to-point messaging, and collectives.
//!
//! Each rank is an actor; messages are typed values handed between rank
//! mailboxes with the wire time charged to the sender through the
//! [`Topology`]. The subset implemented is what the paper's benchmarks use:
//! eager send/recv with tag and source matching (MPI-BLAST's master/worker
//! protocol, the Laplace solver's halo exchange), plus barrier, broadcast,
//! reduce, allreduce, and gather (binomial trees, like mpich's defaults).

use std::any::Any;
use std::sync::Arc;

use parking_lot::Mutex;

use semplar_runtime::sync::Barrier;
use semplar_runtime::{Event, Runtime};

use crate::topology::Topology;

/// Message tag (like an MPI tag).
pub type Tag = u32;

/// Wire-size header charged per message in addition to the payload.
pub const MSG_HDR: u64 = 64;

struct Envelope {
    src: usize,
    tag: Tag,
    data: Box<dyn Any + Send>,
}

struct Mailbox {
    q: Mutex<Vec<Envelope>>,
    ev: Event,
}

impl Mailbox {
    fn deliver(&self, env: Envelope) {
        self.q.lock().push(env);
        self.ev.signal();
    }

    fn take(&self, src: Option<usize>, tag: Tag) -> Envelope {
        loop {
            {
                let mut q = self.q.lock();
                if let Some(pos) = q
                    .iter()
                    .position(|e| e.tag == tag && src.is_none_or(|s| e.src == s))
                {
                    return q.remove(pos);
                }
            }
            self.ev.wait();
        }
    }
}

/// A rank's handle to the world (communicator + rank id).
pub struct Rank {
    /// This rank's id, `0..size`.
    pub rank: usize,
    /// World size.
    pub size: usize,
    rt: Arc<dyn Runtime>,
    topo: Arc<Topology>,
    boxes: Arc<Vec<Arc<Mailbox>>>,
    barrier: Arc<Barrier>,
}

impl Rank {
    /// The runtime this world runs on.
    pub fn runtime(&self) -> &Arc<dyn Runtime> {
        &self.rt
    }

    /// Eager send: charges `MSG_HDR + bytes` of wire time to the caller,
    /// then deposits `value` in `dst`'s mailbox. `bytes` is the modelled
    /// payload size (typed values don't have a canonical wire encoding).
    pub fn send<T: Any + Send>(&self, dst: usize, tag: Tag, value: T, bytes: u64) {
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        self.topo.deliver(self.rank, dst, MSG_HDR + bytes);
        self.boxes[dst].deliver(Envelope {
            src: self.rank,
            tag,
            data: Box::new(value),
        });
    }

    /// Blocking receive with tag and optional source matching. Returns the
    /// source rank and the value. Panics if the received value's type does
    /// not match `T` (a protocol bug, like a mismatched MPI datatype).
    pub fn recv<T: Any + Send>(&self, src: Option<usize>, tag: Tag) -> (usize, T) {
        let env = self.boxes[self.rank].take(src, tag);
        let val = env
            .data
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("rank {}: type mismatch on tag {tag}", self.rank));
        (env.src, *val)
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Binomial-tree broadcast of `value` from `root`. `bytes` is the
    /// modelled payload size per hop.
    pub fn bcast<T: Any + Send + Clone>(&self, root: usize, value: Option<T>, bytes: u64) -> T {
        const TAG: Tag = u32::MAX - 1;
        let n = self.size;
        let vrank = (self.rank + n - root) % n;
        // Receive from the parent (vrank with its lowest set bit cleared),
        // then forward to children at strides below that bit.
        let (v, top_mask) = if vrank == 0 {
            (
                value.expect("root must supply the broadcast value"),
                n.next_power_of_two(),
            )
        } else {
            let low_bit = vrank & vrank.wrapping_neg();
            let parent = ((vrank - low_bit) + root) % n;
            let (_, v) = self.recv::<T>(Some(parent), TAG);
            (v, low_bit)
        };
        let mut mask = top_mask >> 1;
        while mask > 0 {
            let child_v = vrank + mask;
            if child_v < n {
                let child = (child_v + root) % n;
                self.send(child, TAG, v.clone(), bytes);
            }
            mask >>= 1;
        }
        v
    }

    /// Reduce to `root` with a binary combiner over a binomial tree.
    pub fn reduce<T: Any + Send>(
        &self,
        root: usize,
        mine: T,
        bytes: u64,
        combine: impl Fn(T, T) -> T,
    ) -> Option<T> {
        const TAG: Tag = u32::MAX - 2;
        let n = self.size;
        let vrank = (self.rank + n - root) % n;
        let mut acc = mine;
        let mut mask = 1usize;
        loop {
            if vrank & mask != 0 {
                // Send to parent and stop.
                let parent = ((vrank & !mask) + root) % n;
                self.send(parent, TAG, acc, bytes);
                return None;
            }
            let child_v = vrank | mask;
            if child_v < n {
                let child = (child_v + root) % n;
                let (_, v) = self.recv::<T>(Some(child), TAG);
                acc = combine(acc, v);
            }
            mask <<= 1;
            if mask >= n.next_power_of_two() {
                break;
            }
        }
        Some(acc) // only vrank 0 (the root) reaches here
    }

    /// Allreduce: reduce to rank 0 then broadcast.
    pub fn allreduce<T: Any + Send + Clone>(
        &self,
        mine: T,
        bytes: u64,
        combine: impl Fn(T, T) -> T,
    ) -> T {
        let r = self.reduce(0, mine, bytes, combine);
        self.bcast(0, r, bytes)
    }

    /// Gather every rank's value at `root` (flat exchange). Returns
    /// `Some(values_by_rank)` on the root.
    pub fn gather<T: Any + Send>(&self, root: usize, mine: T, bytes: u64) -> Option<Vec<T>> {
        const TAG: Tag = u32::MAX - 3;
        if self.rank == root {
            let mut out: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
            out[root] = Some(mine);
            for _ in 0..self.size - 1 {
                let (src, v) = self.recv::<T>(None, TAG);
                out[src] = Some(v);
            }
            Some(out.into_iter().map(|v| v.expect("gather hole")).collect())
        } else {
            self.send(root, TAG, mine, bytes);
            None
        }
    }

    /// Scatter one value per rank from `root` (who supplies
    /// `Some(values_by_rank)`); every rank returns its own element.
    pub fn scatter<T: Any + Send>(
        &self,
        root: usize,
        values: Option<Vec<T>>,
        bytes_each: u64,
    ) -> T {
        const TAG: Tag = u32::MAX - 4;
        if self.rank == root {
            let values = values.expect("root must supply the scatter values");
            assert_eq!(values.len(), self.size, "one value per rank");
            let mut mine: Option<T> = None;
            for (dst, v) in values.into_iter().enumerate() {
                if dst == root {
                    mine = Some(v);
                } else {
                    self.send(dst, TAG, v, bytes_each);
                }
            }
            mine.expect("root's own element")
        } else {
            self.recv::<T>(Some(root), TAG).1
        }
    }

    /// All-to-all personalized exchange: element `j` of `mine` goes to rank
    /// `j`; returns the elements received, indexed by source rank.
    pub fn alltoall<T: Any + Send>(&self, mine: Vec<T>, bytes_each: u64) -> Vec<T> {
        const TAG: Tag = u32::MAX - 5;
        assert_eq!(mine.len(), self.size, "one element per destination");
        let mut out: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
        for (dst, v) in mine.into_iter().enumerate() {
            if dst == self.rank {
                out[dst] = Some(v);
            } else {
                self.send(dst, TAG, v, bytes_each);
            }
        }
        for _ in 0..self.size - 1 {
            let (src, v) = self.recv::<T>(None, TAG);
            out[src] = Some(v);
        }
        out.into_iter().map(|v| v.expect("alltoall hole")).collect()
    }
}

/// Run an `n`-rank world: spawns one actor per rank, waits for all of them,
/// and returns their results in rank order. Panics propagate.
pub fn run_world<T, F>(topo: Arc<Topology>, n: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(Rank) -> T + Send + Sync + 'static,
{
    assert!(n >= 1);
    let rt = topo.network().runtime().clone();
    let boxes: Arc<Vec<Arc<Mailbox>>> = Arc::new(
        (0..n)
            .map(|_| {
                Arc::new(Mailbox {
                    q: Mutex::new(Vec::new()),
                    ev: rt.event(),
                })
            })
            .collect(),
    );
    let barrier = Barrier::new(&rt, n);
    let f = Arc::new(f);
    let results: Arc<Mutex<Vec<Option<T>>>> = Arc::new(Mutex::new((0..n).map(|_| None).collect()));
    let mut handles = Vec::with_capacity(n);
    for rank in 0..n {
        let ctx = Rank {
            rank,
            size: n,
            rt: rt.clone(),
            topo: topo.clone(),
            boxes: boxes.clone(),
            barrier: barrier.clone(),
        };
        let f2 = f.clone();
        let res2 = results.clone();
        handles.push(rt.spawn(
            &format!("rank-{rank}"),
            Box::new(move || {
                let out = f2(ctx);
                res2.lock()[rank] = Some(out);
            }),
        ));
    }
    for h in handles {
        h.join_unwrap();
    }
    let mut g = results.lock();
    g.drain(..)
        .map(|v| v.expect("rank died silently"))
        .collect()
}
