//! Figure 6: MPI-BLAST execution time vs number of processors on the
//! DAS-2, OSC P4, and TG-NCSA clusters — synchronous vs asynchronous I/O
//! plus the maximum-speedup bound.
//!
//! Paper reference points: async improves average execution time by 20 %
//! (DAS-2), 26 % (OSC), 22 % (TG-NCSA); 92–97 % of the maximum expected
//! speedup is achieved.

use semplar_bench::table::{pct, secs};
use semplar_bench::{avg_gain, fig6_blast, Table};
use semplar_clusters::all_clusters;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (procs, queries): (&[usize], usize) = if quick {
        (&[2, 4, 8], 120)
    } else {
        (&[2, 3, 4, 6, 8, 10, 13], 2425)
    };

    for spec in all_clusters() {
        let name = spec.name;
        let rows = fig6_blast(spec, procs, queries);
        let mut t = Table::new(
            &format!("Fig. 6 ({name}): MPI-BLAST execution time"),
            &[
                "procs",
                "sync (s)",
                "async (s)",
                "max-speedup (s)",
                "gain",
                "overlap",
            ],
        );
        for r in &rows {
            t.row(vec![
                r.procs.to_string(),
                secs(r.sync_secs),
                secs(r.async_secs),
                secs(r.max_speedup_secs),
                pct(r.gain()),
                format!("{:.0}%", r.overlap_fraction() * 100.0),
            ]);
        }
        t.print();
        let gain = avg_gain(rows.iter().map(|r| (r.sync_secs, r.async_secs)));
        let overlap = rows.iter().map(|r| r.overlap_fraction()).sum::<f64>() / rows.len() as f64;
        let paper = match name {
            "das2" => "paper: sync +20% slower, 92% overlap",
            "osc" => "paper: sync +26% slower, 97% overlap",
            _ => "paper: sync +22% slower, 96% overlap",
        };
        println!(
            "{name}: sync slower by {} on average | overlap {:.0}% of max speedup   ({paper})",
            pct(gain),
            overlap * 100.0
        );
    }
}
