//! Multi-stream striped files — the paper's §7.2 optimization, implemented
//! at the library level (its stated future work).
//!
//! In the paper's experiment, each node calls `MPI_File_open` twice on the
//! same file; each open yields an independent TCP connection, and
//! asynchronous writes on the two descriptors advance simultaneously,
//! "ideally doubling the observed throughput". [`StripedFile`] packages
//! that pattern: it opens the file `streams` times (one connection + one
//! I/O thread per stream, the paper's ideal one-stream-per-thread mapping)
//! and splits every operation into `unit`-sized blocks assigned round-robin
//! across the streams.
//!
//! The split-TCP approach is *not feasible with synchronous I/O*: a blocking
//! write cannot drive two connections at once. Accordingly even
//! [`StripedFile::write_at`] is internally asynchronous — it fans the blocks
//! out as `iwrite`s and waits for all of them.

use std::sync::Arc;

use semplar_runtime::Runtime;
use semplar_srb::{OpenFlags, Payload};

use crate::adio::{AdioFs, IoResult};
use crate::engine::EngineCfg;
use crate::file::File;
use crate::request::{Request, Status};

/// How one operation's byte range is divided across the streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StripeUnit {
    /// Fixed-size blocks assigned round-robin by global block index.
    Bytes(u64),
    /// Each operation is split into `streams` contiguous, equal chunks —
    /// the paper's two-descriptor pattern (each connection carries half of
    /// the node's file section).
    Even,
}

/// A file striped across several independent connections.
pub struct StripedFile {
    files: Vec<File>,
    unit: StripeUnit,
}

/// A bundle of per-block requests from one striped operation.
pub struct MultiRequest {
    reqs: Vec<Request>,
    /// (stream, offset, len) per block, for reassembling striped reads.
    layout: Vec<(usize, u64, u64)>,
}

impl MultiRequest {
    /// Wait for every block (`MPIO_Waitall`); returns total bytes moved.
    pub fn wait(&self) -> IoResult<u64> {
        let statuses = Request::wait_all(&self.reqs)?;
        Ok(statuses.iter().map(|s| s.bytes).sum())
    }

    /// Wait for every block of a striped read and reassemble the payload in
    /// offset order.
    pub fn wait_read(&self) -> IoResult<Payload> {
        let statuses = Request::wait_all(&self.reqs)?;
        assemble_read(&self.layout, &statuses)
    }

    /// `true` once all blocks have completed (`MPIO_Testall`).
    pub fn test(&self) -> bool {
        Request::test_all(&self.reqs)
    }

    /// Number of per-stream block requests in this bundle.
    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    /// True if the operation was empty.
    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }
}

fn assemble_read(layout: &[(usize, u64, u64)], statuses: &[Status]) -> IoResult<Payload> {
    // Sort blocks by offset; stop at the first short block (EOF).
    let mut idx: Vec<usize> = (0..layout.len()).collect();
    idx.sort_by_key(|&i| layout[i].1);
    let all_real = statuses
        .iter()
        .all(|s| s.data.as_ref().is_some_and(|d| d.data().is_some()));
    if all_real {
        let mut out = Vec::new();
        for &i in &idx {
            let d = statuses[i].data.as_ref().expect("read status without data");
            out.extend_from_slice(d.data().expect("checked real"));
            if statuses[i].bytes < layout[i].2 {
                break; // short read: EOF inside this block
            }
        }
        Ok(Payload::bytes(out))
    } else {
        let mut total = 0u64;
        for &i in &idx {
            total += statuses[i].bytes;
            if statuses[i].bytes < layout[i].2 {
                break;
            }
        }
        Ok(Payload::sized(total))
    }
}

impl StripedFile {
    /// Open `path` over `streams` connections with `unit`-byte striping.
    /// Each stream gets one pre-spawned I/O thread.
    pub fn open(
        rt: &Arc<dyn Runtime>,
        fs: &dyn AdioFs,
        path: &str,
        flags: OpenFlags,
        streams: usize,
        unit: StripeUnit,
    ) -> IoResult<StripedFile> {
        assert!(streams >= 1, "need at least one stream");
        if let StripeUnit::Bytes(u) = unit {
            assert!(u >= 1, "stripe unit must be positive");
        }
        let mut files = Vec::with_capacity(streams);
        for _ in 0..streams {
            files.push(File::open_with(
                rt,
                fs,
                path,
                flags,
                EngineCfg {
                    io_threads: 1,
                    prespawn: true,
                },
            )?);
        }
        Ok(StripedFile { files, unit })
    }

    /// Number of streams.
    pub fn streams(&self) -> usize {
        self.files.len()
    }

    /// Split `[offset, offset+len)` into stripe blocks: (stream, off, len).
    fn blocks(&self, offset: u64, len: u64) -> Vec<(usize, u64, u64)> {
        let n = self.files.len() as u64;
        let mut out = Vec::new();
        match self.unit {
            StripeUnit::Bytes(unit) => {
                let mut off = offset;
                let end = offset + len;
                while off < end {
                    let block_idx = off / unit;
                    let block_end = ((block_idx + 1) * unit).min(end);
                    let stream = (block_idx % n) as usize;
                    out.push((stream, off, block_end - off));
                    off = block_end;
                }
            }
            StripeUnit::Even => {
                let chunk = len.div_ceil(n);
                let mut off = offset;
                let end = offset + len;
                let mut stream = 0usize;
                while off < end {
                    let this = chunk.min(end - off);
                    out.push((stream, off, this));
                    off += this;
                    stream += 1;
                }
            }
        }
        out
    }

    /// Asynchronous striped write: every block is queued on its stream's
    /// I/O thread; all streams transfer concurrently.
    pub fn iwrite_at(&self, offset: u64, data: Payload) -> MultiRequest {
        let layout = self.blocks(offset, data.len());
        let reqs = layout
            .iter()
            .map(|&(stream, off, len)| {
                self.files[stream].iwrite_at(off, data.slice(off - offset, len))
            })
            .collect();
        MultiRequest { reqs, layout }
    }

    /// Asynchronous striped read.
    pub fn iread_at(&self, offset: u64, len: u64) -> MultiRequest {
        let layout = self.blocks(offset, len);
        let reqs = layout
            .iter()
            .map(|&(stream, off, len)| self.files[stream].iread_at(off, len))
            .collect();
        MultiRequest { reqs, layout }
    }

    /// Blocking striped write (fan out + wait all).
    pub fn write_at(&self, offset: u64, data: Payload) -> IoResult<u64> {
        self.iwrite_at(offset, data).wait()
    }

    /// Blocking striped read.
    pub fn read_at(&self, offset: u64, len: u64) -> IoResult<Payload> {
        self.iread_at(offset, len).wait_read()
    }

    /// Redundant read (the paper's §4.1/§9 latency-reduction idea,
    /// implemented here as its stated future work): issue the **same** read
    /// on every stream and accept whichever connection delivers first — the
    /// others are ignored. With streams routed over paths of different
    /// quality this trades bandwidth for tail latency.
    pub fn redundant_read_at(&self, offset: u64, len: u64) -> IoResult<Payload> {
        let reqs: Vec<Request> = self.files.iter().map(|f| f.iread_at(offset, len)).collect();
        let rt = self.files[0].runtime().clone();
        let (_winner, result) = Request::wait_any(&rt, &reqs);
        // Losers complete in the background on their own I/O threads; their
        // results are dropped, exactly as the paper describes.
        let status = result?;
        Ok(status.data.unwrap_or(Payload::sized(status.bytes)))
    }

    /// Close every stream.
    pub fn close(&self) -> IoResult<()> {
        let mut first_err = None;
        for f in &self.files {
            if let Err(e) = f.close() {
                first_err = first_err.or(Some(e));
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adio::MemFs;
    use proptest::prelude::*;
    use semplar_runtime::simulate;

    fn layout_for(
        streams: usize,
        unit: StripeUnit,
        offset: u64,
        len: u64,
    ) -> Vec<(usize, u64, u64)> {
        simulate(move |rt| {
            let fs = MemFs::new(rt.clone());
            let f = StripedFile::open(&rt, &fs, "/l", OpenFlags::CreateRw, streams, unit).unwrap();
            let blocks = f.blocks(offset, len);
            f.close().unwrap();
            blocks
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Stripe layouts exactly tile the requested byte range: contiguous,
        /// non-overlapping, in order, with valid stream indices.
        #[test]
        fn blocks_tile_the_range_exactly(
            streams in 1usize..6,
            unit_kind in 0u8..2,
            unit_bytes in 1u64..5000,
            offset in 0u64..100_000,
            len in 1u64..200_000,
        ) {
            let unit = if unit_kind == 0 {
                StripeUnit::Bytes(unit_bytes)
            } else {
                StripeUnit::Even
            };
            let blocks = layout_for(streams, unit, offset, len);
            prop_assert!(!blocks.is_empty());
            let mut cursor = offset;
            for &(stream, off, blen) in &blocks {
                prop_assert!(stream < streams, "stream index out of range");
                prop_assert_eq!(off, cursor, "gap or overlap in layout");
                prop_assert!(blen > 0);
                cursor += blen;
            }
            prop_assert_eq!(cursor, offset + len, "layout does not cover range");
        }

        /// Even striping balances: largest and smallest per-stream totals
        /// differ by at most one chunk.
        #[test]
        fn even_striping_is_balanced(
            streams in 1usize..6,
            len in 1u64..1_000_000,
        ) {
            let blocks = layout_for(streams, StripeUnit::Even, 0, len);
            let mut totals = vec![0u64; streams];
            for &(stream, _, blen) in &blocks {
                totals[stream] += blen;
            }
            let max = *totals.iter().max().unwrap();
            let min = *totals.iter().min().unwrap();
            let chunk = len.div_ceil(streams as u64);
            prop_assert!(max - min <= chunk, "imbalance {max}-{min} > chunk {chunk}");
            prop_assert_eq!(totals.iter().sum::<u64>(), len);
        }

        /// Striped writes followed by striped reads round-trip arbitrary
        /// data at arbitrary offsets, across both stripe kinds.
        #[test]
        fn striped_roundtrip_property(
            streams in 1usize..5,
            unit in prop_oneof![
                (16u64..4096).prop_map(StripeUnit::Bytes),
                Just(StripeUnit::Even)
            ],
            offset in 0u64..10_000,
            data in proptest::collection::vec(any::<u8>(), 1..20_000),
        ) {
            let ok = simulate(move |rt| {
                let fs = MemFs::new(rt.clone());
                let f = StripedFile::open(&rt, &fs, "/rt", OpenFlags::CreateRw, streams, unit)
                    .unwrap();
                f.write_at(offset, Payload::bytes(data.clone())).unwrap();
                let back = f.read_at(offset, data.len() as u64).unwrap();
                let ok = back.data().unwrap() == &data[..];
                f.close().unwrap();
                ok
            });
            prop_assert!(ok);
        }
    }
}
