//! The federation subsystem, end to end: a sharded MCAT with write-path
//! replication must survive a seeded crash of a shard primary mid-write
//! with zero acked-byte loss, and the whole recovery — failover ops,
//! reconciliation ledger, final checksums — must replay bit-identically
//! for the same seed.

use std::sync::Arc;

use proptest::prelude::*;
use semplar::{AdioFile, AdioFs, FedFs, FedShard, OpenFlags, Payload, ReconcileLedger, SrbFs};
use semplar_repro::faults::FaultPlan;
use semplar_repro::netsim::{Bw, Network};
use semplar_repro::runtime::{simulate, Dur};
use semplar_repro::semplar;
use semplar_repro::srb::{adler32, ConnRoute, Replicator, RetryPolicy, SrbServer, SrbServerCfg};

const SHARDS: usize = 2;
const FILES: usize = 2;
const BYTES_PER_FILE: u64 = 3 << 20;
const CHUNK: u64 = 512 << 10;

/// The deterministic byte at `offset + k` of federation file `file`.
fn pattern(file: usize, offset: u64, len: u64) -> Vec<u8> {
    (0..len)
        .map(|k| (((offset + k) as usize).wrapping_mul(131) + file * 29 + 17) as u8)
        .collect()
}

/// Everything observable about one federation run.
#[derive(Clone, Debug, PartialEq, Eq)]
struct RunResult {
    ledger: ReconcileLedger,
    primary_sums: Vec<u32>,
    replica_sums: Vec<u32>,
    failovers: u64,
    reconciles: u64,
    reconciled_bytes: u64,
    /// Deepest the divergence queue ever got across all shards.
    div_high_water: u64,
    /// Deepest any shard's replicator backlog ever got.
    repl_high_water: u64,
}

/// Write FILES files round-robin through a SHARDS-shard federation; with
/// `crash` set, the primary owning the first file crashes mid-write and
/// restarts, exercising failover and reconciliation.
fn federation_run(seed: u64, crash: Option<(Dur, Dur)>) -> RunResult {
    simulate(move |rt| {
        let net = Network::new(rt.clone());
        let mut shards = Vec::with_capacity(SHARDS);
        let mut primaries = Vec::with_capacity(SHARDS);
        for s in 0..SHARDS {
            let route = |name: String, bw: f64, lat: u64| ConnRoute {
                fwd: vec![net.add_link(&format!("{name}-f"), Bw::mbps(bw), Dur::from_millis(lat))],
                rev: vec![net.add_link(&format!("{name}-r"), Bw::mbps(bw), Dur::from_millis(lat))],
                send_cap: None,
                recv_cap: None,
                bus: None,
            };
            let primary = SrbServer::new(net.clone(), SrbServerCfg::default());
            let replica = SrbServer::new(net.clone(), SrbServerCfg::default());
            primary.mcat().add_user("u", "p");
            replica.mcat().add_user("u", "p");
            replica.mcat().add_user("fed", "fed");
            let cfg = |r: ConnRoute| semplar::SrbFsConfig {
                route: r,
                user: "u".into(),
                password: "p".into(),
            };
            let primary_fs = SrbFs::with_retry(
                primary.clone(),
                cfg(route(format!("s{s}p"), 50.0, 10)),
                RetryPolicy::none(),
            );
            let replica_fs = SrbFs::with_retry(
                replica.clone(),
                cfg(route(format!("s{s}r"), 50.0, 10)),
                RetryPolicy::none(),
            );
            let repl = Replicator::start(
                &rt,
                primary.clone(),
                replica,
                route(format!("s{s}x"), 1000.0, 1),
                "fed",
                "fed",
                RetryPolicy::default(),
            );
            primaries.push(primary);
            shards.push(FedShard {
                primary: primary_fs,
                replica: replica_fs,
                replicator: Some(repl),
                reverse: None,
            });
        }
        let fed = FedFs::new(&rt, shards);
        fed.mk_coll_all("/fed").expect("mk /fed");
        let paths: Vec<String> = (0..FILES).map(|i| format!("/fed/data{i}")).collect();
        let inj = crash.map(|(at, down_for)| {
            FaultPlan::new(seed).server_crash_at(at, down_for).inject(
                &rt,
                &net,
                &primaries[fed.shard_of(&paths[0])],
            )
        });

        let mut handles: Vec<Box<dyn AdioFile>> = paths
            .iter()
            .map(|p| fed.open(p, OpenFlags::CreateRw).expect("open"))
            .collect();
        let mut outage_read_checked = false;
        for c in 0..BYTES_PER_FILE / CHUNK {
            for (i, h) in handles.iter_mut().enumerate() {
                let data = Payload::bytes(pattern(i, c * CHUNK, CHUNK));
                assert_eq!(h.write_at(c * CHUNK, &data).expect("write"), CHUNK);
            }
            if !outage_read_checked && fed.failovers() > 0 {
                // Mid-outage read through the federation: the replica must
                // serve every acked byte of the crashed shard's file.
                let mut r = fed.open(&paths[0], OpenFlags::Read).expect("ro open");
                let got = r.read_at(0, CHUNK).expect("outage read");
                let _ = r.close();
                assert_eq!(
                    got.data().expect("real bytes"),
                    &pattern(0, 0, CHUNK)[..],
                    "acked bytes lost during outage"
                );
                outage_read_checked = true;
            }
        }
        for mut h in handles {
            h.close().expect("close");
        }
        if let Some(inj) = &inj {
            assert!(inj.stats().injected() >= 1, "crash never landed");
            while !inj.done() {
                rt.sleep(Dur::from_millis(100));
            }
        }
        while !fed.reconcile() {
            rt.sleep(Dur::from_millis(50));
        }
        for shard in fed.shards() {
            if let Some(repl) = &shard.replicator {
                repl.quiesce();
            }
        }
        if crash.is_some() {
            assert!(outage_read_checked, "outage never observed by a failover");
        }
        let sums = |pick: fn(&FedShard) -> &Arc<SrbFs>| -> Vec<u32> {
            paths
                .iter()
                .map(|p| {
                    let conn = pick(&fed.shards()[fed.shard_of(p)])
                        .admin_conn()
                        .expect("admin conn");
                    let sum = conn.checksum(p).expect("checksum");
                    let _ = conn.disconnect();
                    sum
                })
                .collect()
        };
        let recovery = fed.recovery_stats();
        RunResult {
            ledger: fed.reconcile_ledger(),
            primary_sums: sums(|s| &s.primary),
            replica_sums: sums(|s| &s.replica),
            failovers: fed.failovers(),
            reconciles: recovery.reconciles,
            reconciled_bytes: recovery.reconciled_bytes,
            div_high_water: fed.divergence_high_water(),
            repl_high_water: fed
                .shards()
                .iter()
                .filter_map(|s| s.replicator.as_ref())
                .map(|r| r.stats().queue_high_water)
                .max()
                .unwrap_or(0),
        }
    })
}

/// Checksums every run must converge to: the adler32 of each file's
/// deterministic contents, independent of any fault plan.
fn expected_sums() -> Vec<u32> {
    (0..FILES)
        .map(|i| adler32(&pattern(i, 0, BYTES_PER_FILE)))
        .collect()
}

/// A seeded crash of a shard primary mid-write loses zero acked bytes:
/// after reconciliation, primaries and replicas all checksum identically
/// to the fault-free run (and to the written bytes themselves).
#[test]
fn shard_crash_mid_write_loses_no_acked_bytes() {
    let crash = Some((Dur::from_millis(300), Dur::from_millis(500)));
    let clean = federation_run(7, None);
    let faulted = federation_run(7, crash);
    let expected = expected_sums();
    assert_eq!(
        clean.primary_sums, expected,
        "fault-free run wrote wrong bytes"
    );
    assert_eq!(
        clean.replica_sums, expected,
        "replication diverged fault-free"
    );
    assert_eq!(faulted.primary_sums, expected, "primary lost acked bytes");
    assert_eq!(faulted.replica_sums, expected, "replica lost acked bytes");
    assert!(faulted.failovers > 0, "crash never forced a failover");
    assert!(
        !faulted.ledger.entries.is_empty(),
        "nothing was reconciled despite failovers"
    );
    assert!(faulted.reconciles >= 1);
    assert_eq!(faulted.reconciled_bytes, faulted.ledger.bytes);
    assert_eq!(clean.failovers, 0);
    assert_eq!(clean.ledger, ReconcileLedger::default());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The divergence queue is **bounded**: however the crash timing
    /// lands, the failover queue can never hold more extents than the
    /// workload wrote in total — each queued entry is one acked chunk,
    /// drained in order by reconciliation, never duplicated. A leak here
    /// (replays re-queued, drains lost) blows straight past the cap.
    /// The replicator backlog obeys the same cap on its side.
    #[test]
    fn divergence_queue_is_bounded_by_written_extents(
        seed in 0u64..1000,
        crash_ms in 100u64..500,
        down_ms in 100u64..600,
    ) {
        let cap = (FILES as u64) * (BYTES_PER_FILE / CHUNK);
        let crash = Some((Dur::from_millis(crash_ms), Dur::from_millis(down_ms)));
        let run = federation_run(seed, crash);
        prop_assert!(
            run.div_high_water <= cap,
            "divergence queue leaked: high-water {} > {} written extents",
            run.div_high_water,
            cap
        );
        prop_assert!(
            run.repl_high_water <= cap,
            "replicator backlog leaked: high-water {} > {} written extents",
            run.repl_high_water,
            cap
        );
        // The bound is meaningful: a mid-write crash actually queued
        // divergence before reconciliation drained it.
        prop_assert!(run.failovers == 0 || run.div_high_water >= 1);
    }
}

/// Same seed ⇒ bit-identical recovery: the reconciliation ledger (entries,
/// order, byte counts) and the post-reconcile checksums replay exactly.
#[test]
fn same_seed_reconciliation_is_bit_identical() {
    let crash = Some((Dur::from_millis(300), Dur::from_millis(500)));
    let a = federation_run(23, crash);
    let b = federation_run(23, crash);
    assert_eq!(a, b, "same seed must replay bit-identically");
    assert!(
        !a.ledger.entries.is_empty(),
        "plan never exercised reconciliation"
    );
}
