//! # semplar-repro
//!
//! Umbrella crate for the reproduction of Ali & Lauria, *Improving the
//! Performance of Remote I/O Using Asynchronous Primitives* (HPDC 2006).
//! It re-exports every layer of the stack so the examples under
//! `examples/` and the integration tests under `tests/` read top-down:
//!
//! * [`runtime`] — virtual-time / wall-clock execution;
//! * [`netsim`] — the flow-level WAN and CPU models;
//! * [`srb`] — the Storage Resource Broker substrate;
//! * [`faults`] — deterministic virtual-time fault injection;
//! * [`mpi`] — the thread-per-rank message-passing runtime;
//! * [`compress`] — the LZO-class codec;
//! * [`semplar`] — the paper's library: MPI-IO-style API, async engine,
//!   multi-stream striping, compression pipeline;
//! * [`clusters`] — DAS-2 / OSC / TG-NCSA testbed models;
//! * [`workloads`] — the paper's benchmarks;
//! * [`mc`] — the bounded model checker for recovery/replication.

#![warn(missing_docs)]

pub use semplar;
pub use semplar_clusters as clusters;
pub use semplar_compress as compress;
pub use semplar_faults as faults;
pub use semplar_mc as mc;
pub use semplar_mpi as mpi;
pub use semplar_netsim as netsim;
pub use semplar_runtime as runtime;
pub use semplar_srb as srb;
pub use semplar_workloads as workloads;
