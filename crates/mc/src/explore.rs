//! Bounded systematic exploration.
//!
//! The explorer enumerates schedules by *stateless re-execution*: each
//! candidate schedule is a prefix of choice indices, executed from scratch
//! against a fresh virtual-time simulation with a [`ScriptHook`]. After an
//! execution, every choice point the run revealed **beyond** its scripted
//! prefix is expanded: for point `i` with `n` eligible events, the
//! prefixes `recorded[..i] + [alt]` for `alt in 1..n` are pushed onto the
//! worklist. Prefixes never end in 0, so every executed schedule is a
//! distinct interleaving by construction.
//!
//! Two bounds keep the tree finite: `depth` caps how many choice points
//! deep expansion reaches, and `max_executions` caps the total run count
//! (reported as a truncated frontier). Visited-state hashing prunes
//! re-expansion: if the runtime fingerprint at point `i` has already been
//! expanded with alternative `alt`, the subtree is assumed explored — the
//! fingerprint covers the clock, every actor's blocking state, and the
//! pending event multiset, which is exactly the state a schedule decision
//! can depend on.

use std::collections::{HashSet, VecDeque};

use crate::scenario::Scenario;
use crate::script::ScriptHook;
use crate::trace::McTrace;

/// Worklist discipline for the exploration frontier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Depth-first: dives to the depth bound quickly; smallest frontier.
    Dfs,
    /// Breadth-first: finds shallow counterexamples first.
    Bfs,
}

/// Bounds and knobs for one exploration.
#[derive(Clone, Debug)]
pub struct ExploreCfg {
    /// Worklist discipline.
    pub strategy: Strategy,
    /// Maximum choice-point depth expanded (points beyond it always take
    /// the default event).
    pub depth: usize,
    /// Hard cap on executions; hitting it truncates the frontier.
    pub max_executions: u64,
    /// Prune alternatives whose (state fingerprint, alternative) pair was
    /// already expanded from an earlier execution.
    pub prune_visited: bool,
    /// Stop at the first invariant violation instead of exploring on.
    pub stop_on_violation: bool,
}

impl Default for ExploreCfg {
    fn default() -> ExploreCfg {
        ExploreCfg {
            strategy: Strategy::Dfs,
            depth: 8,
            max_executions: 2000,
            prune_visited: true,
            stop_on_violation: true,
        }
    }
}

/// What one bounded exploration did and found.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExploreReport {
    /// Schedules executed — each one a distinct interleaving.
    pub executions: u64,
    /// Executions that violated an invariant.
    pub violations: u64,
    /// The first violation's replayable trace, if any.
    pub counterexample: Option<McTrace>,
    /// Choice points encountered, summed over all executions.
    pub choice_points: u64,
    /// Largest eligible-event set seen at any single choice point.
    pub max_alternatives: usize,
    /// Most choice points seen in a single execution.
    pub max_points_per_run: usize,
    /// Distinct runtime state fingerprints observed at choice points.
    pub unique_states: u64,
    /// Alternatives skipped by visited-state pruning.
    pub pruned: u64,
    /// True when `max_executions` cut the frontier short.
    pub truncated: bool,
}

impl ExploreReport {
    /// The deterministic one-line summary diffed by CI.
    pub fn summary(&self) -> String {
        format!(
            "executions={} violations={} choice_points={} max_alternatives={} \
             max_points_per_run={} unique_states={} pruned={} truncated={}",
            self.executions,
            self.violations,
            self.choice_points,
            self.max_alternatives,
            self.max_points_per_run,
            self.unique_states,
            self.pruned,
            self.truncated,
        )
    }
}

/// Run a bounded exploration of `scenario` under `cfg`.
pub fn explore(scenario: &dyn Scenario, cfg: &ExploreCfg) -> ExploreReport {
    semplar_runtime::set_quiet_panics(true);
    let mut report = ExploreReport::default();
    let mut worklist: VecDeque<Vec<usize>> = VecDeque::new();
    worklist.push_back(Vec::new());
    let mut expanded: HashSet<(u64, usize)> = HashSet::new();
    let mut states: HashSet<u64> = HashSet::new();
    while let Some(prefix) = match cfg.strategy {
        Strategy::Dfs => worklist.pop_back(),
        Strategy::Bfs => worklist.pop_front(),
    } {
        if report.executions >= cfg.max_executions {
            report.truncated = true;
            break;
        }
        let hook = ScriptHook::follow(prefix.clone());
        let outcome = scenario.run(hook.clone());
        let records = hook.records();
        report.executions += 1;
        report.choice_points += records.len() as u64;
        report.max_points_per_run = report.max_points_per_run.max(records.len());
        for r in &records {
            report.max_alternatives = report.max_alternatives.max(r.alternatives);
            states.insert(r.fingerprint);
        }
        if let Err(violation) = outcome {
            report.violations += 1;
            if report.counterexample.is_none() {
                report.counterexample =
                    Some(McTrace::from_records(scenario.name(), &violation, &records));
            }
            if cfg.stop_on_violation {
                break;
            }
            // A violating run's suffix is not a schedule worth expanding.
            continue;
        }
        // Expand only points this run decided freshly (beyond its prefix).
        for i in prefix.len()..records.len().min(cfg.depth) {
            for alt in 1..records[i].alternatives {
                if cfg.prune_visited && !expanded.insert((records[i].fingerprint, alt)) {
                    report.pruned += 1;
                    continue;
                }
                let mut next: Vec<usize> = records[..i].iter().map(|r| r.chosen).collect();
                next.push(alt);
                worklist.push_back(next);
            }
        }
    }
    report.unique_states = states.len() as u64;
    semplar_runtime::set_quiet_panics(false);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use semplar_runtime::{spawn, Dur, SimRuntime};

    /// A toy scenario: three actors sleep to within one window of each
    /// other, then record their completion order. The "invariant" is
    /// configurable so tests can inject a violation.
    struct Toy {
        /// Completion orders treated as violations.
        forbidden: Vec<Vec<usize>>,
    }

    impl Scenario for Toy {
        fn name(&self) -> &str {
            "toy"
        }
        fn run(&self, hook: Arc<ScriptHook>) -> Result<(), String> {
            let sim = SimRuntime::new();
            sim.set_schedule_hook(hook, Dur::from_micros(10));
            let order = sim.run_root(|rt| {
                let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
                let mut hs = Vec::new();
                for i in 0..3usize {
                    let rt2 = rt.clone();
                    let o = order.clone();
                    hs.push(spawn(&rt, &format!("t{i}"), move || {
                        rt2.sleep(Dur::from_micros(5 + i as u64));
                        o.lock().push(i);
                    }));
                }
                for h in hs {
                    h.join_unwrap();
                }
                let o = order.lock().clone();
                o
            });
            if self.forbidden.contains(&order) {
                return Err(format!("forbidden order {order:?}"));
            }
            Ok(())
        }
    }

    #[test]
    fn explores_every_permutation_of_a_three_way_race() {
        let report = explore(
            &Toy { forbidden: vec![] },
            &ExploreCfg {
                prune_visited: false,
                ..ExploreCfg::default()
            },
        );
        // 3 simultaneous-window events: 3! = 6 interleavings, each hit
        // exactly once (prefixes never end in 0).
        assert_eq!(report.executions, 6);
        assert_eq!(report.violations, 0);
        assert!(report.counterexample.is_none());
        assert_eq!(report.max_alternatives, 3);
        assert!(!report.truncated);
    }

    #[test]
    fn exploration_is_deterministic() {
        let cfg = ExploreCfg::default();
        let a = explore(&Toy { forbidden: vec![] }, &cfg);
        let b = explore(&Toy { forbidden: vec![] }, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn finds_and_replays_a_violation() {
        // Forbid the reverse order — only systematic exploration reaches it.
        let toy = Toy {
            forbidden: vec![vec![2, 1, 0]],
        };
        let report = explore(&toy, &ExploreCfg::default());
        assert_eq!(report.violations, 1);
        let trace = report.counterexample.expect("counterexample");
        assert!(trace.violation.contains("[2, 1, 0]"));
        // The serialized trace replays to the same deterministic failure.
        let parsed = crate::trace::McTrace::parse(&trace.serialize()).expect("parse");
        let replay = toy.run(ScriptHook::follow(parsed.choices.clone()));
        assert_eq!(replay, Err("forbidden order [2, 1, 0]".to_string()));
        // And the default schedule passes.
        assert_eq!(toy.run(ScriptHook::default_schedule()), Ok(()));
    }

    #[test]
    fn bfs_visits_the_same_interleavings_as_dfs() {
        let mk = |strategy| ExploreCfg {
            strategy,
            prune_visited: false,
            ..ExploreCfg::default()
        };
        let d = explore(&Toy { forbidden: vec![] }, &mk(Strategy::Dfs));
        let b = explore(&Toy { forbidden: vec![] }, &mk(Strategy::Bfs));
        assert_eq!(d.executions, b.executions);
        assert_eq!(d.unique_states, b.unique_states);
    }

    #[test]
    fn execution_cap_truncates_the_frontier() {
        let report = explore(
            &Toy { forbidden: vec![] },
            &ExploreCfg {
                max_executions: 3,
                prune_visited: false,
                ..ExploreCfg::default()
            },
        );
        assert_eq!(report.executions, 3);
        assert!(report.truncated);
    }
}
