//! Offline shim for the `proptest` API subset used by this workspace.
//!
//! The build environment has no crates.io access, so this crate provides a
//! minimal property-testing harness with the same spelling as upstream
//! `proptest` for everything the workspace's tests use: the [`proptest!`]
//! macro, `prop_assert!`/`prop_assert_eq!`, range/tuple/`Just` strategies,
//! [`collection::vec`], [`option::of`], [`prop_oneof!`], `.prop_map`, and
//! `any::<u8|bool>()`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs via the panic message and the deterministic per-test seed), and
//! case generation is driven by a fixed xoshiro-style generator so runs are
//! reproducible.

use std::ops::Range;

/// Runner configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 128 keeps the offline suite quick while
        // still exercising each property broadly.
        ProptestConfig { cases: 128 }
    }
}

/// Deterministic case generator (splitmix64 core).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`; `n > 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sample: Box::new(move |rng| self.sample(rng)),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    sample: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy yielding a fixed value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backs [`prop_oneof!`]).
pub struct Union<T> {
    /// The alternatives.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
    (A/0, B/1, C/2, D/3, E/4, F/5);
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6);
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// Strategy over a type's whole domain.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `elem` and a length drawn
    /// from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: lengths in `size`, elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `None` or `Some(inner)`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option` strategy: `Some` three times out of four (mirroring
    /// upstream's bias toward `Some`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Everything tests typically import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property; failure reports the case inputs via panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union {
            options: vec![$($crate::Strategy::boxed($strat)),+],
        }
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `#[test] fn name(arg in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let __run = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(payload) = __run {
                        eprintln!(
                            "proptest case {}/{} of {} failed",
                            __case + 1, cfg.cases, stringify!($name)
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..9, f in 0.5f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_work(
            x in prop_oneof![(1u64..5).prop_map(|v| v * 10), Just(0u64)]
        ) {
            prop_assert!(x == 0 || (10..50).contains(&x));
        }

        #[test]
        fn options_mix(o in crate::option::of(1u32..10)) {
            if let Some(v) = o {
                prop_assert!((1..10).contains(&v));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_cases_honoured(_x in 0u8..255) {
            // Runs 17 times; nothing to assert beyond not panicking.
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
