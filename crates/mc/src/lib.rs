//! # semplar-mc
//!
//! A bounded model checker for the SEMPLAR recovery and replication
//! protocols, in the spirit of message-level checkers like dslab-mp but
//! built over this repo's **virtual-time runtime** instead of an event
//! queue of messages.
//!
//! The seeded fault plans used by the regression suite explore exactly one
//! interleaving per seed. This crate explores *all* of them, up to a
//! bound: [`SimRuntime`](semplar_runtime::SimRuntime) exposes a schedule
//! hook that is consulted whenever more than one wake/timer/fault event is
//! eligible within a window, and protocol code marks its decision points
//! (`fault/server-crash`, `replicator/ship-block`,
//! `reconcile/resume-block`) with
//! [`schedule_point`](semplar_runtime::Runtime::schedule_point). The
//! [`explore`] driver enumerates schedules by stateless re-execution —
//! DFS or BFS over prefixes of choice indices, visited-state hashing for
//! pruning — runs a bounded [`Scenario`] under each, checks its
//! invariants, and on violation emits a serialized [`McTrace`] that
//! replays the exact interleaving as a failing test.
//!
//! ```no_run
//! use semplar_mc::{explore, ExploreCfg, FederationScenario};
//!
//! let report = explore(&FederationScenario::quick(7), &ExploreCfg::default());
//! assert_eq!(report.violations, 0);
//! println!("{}", report.summary());
//! ```

#![warn(missing_docs)]

mod explore;
mod lease;
mod promotion;
mod scenario;
mod script;
mod trace;

pub use explore::{explore, ExploreCfg, ExploreReport, Strategy};
pub use lease::{LeaseBroken, LeaseObservation, LeaseScenario};
pub use promotion::{PromotionObservation, PromotionScenario};
pub use scenario::{BrokenInvariant, FederationScenario, RunObservation, Scenario};
pub use script::{ChoiceRecord, ScriptHook};
pub use trace::McTrace;
