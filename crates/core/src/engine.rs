//! The multi-threaded asynchronous I/O engine — the paper's Fig. 2.
//!
//! A compute thread calling an asynchronous I/O function places the request
//! in a FIFO **I/O queue** and returns immediately; dedicated **I/O
//! threads** dequeue requests and service them by calling the corresponding
//! *synchronous* ADIO operation (so the asynchronous capability stays
//! orthogonal to every other optimization, §4.2–4.3). Idle I/O threads park
//! on the queue's condition variable rather than polling, and the engine can
//! be configured with:
//!
//! * a single lazily spawned I/O thread (the paper's §7.1 configuration:
//!   "the first call to an asynchronous MPI file I/O function spawns the
//!   I/O thread"), or
//! * a pre-spawned pool (the §7.2 configuration), with the paper's guidance
//!   that parallelism only materializes when each thread drives its own TCP
//!   stream.

use std::sync::Arc;

use parking_lot::Mutex;

use semplar_runtime::sync::Channel;
use semplar_runtime::{JoinHandle, Runtime};
use semplar_srb::Payload;

use crate::adio::{AdioFile, IoError, IoResult};
use crate::request::{Completion, Status};
use semplar_runtime::sync::RtMutex;

/// Bound on the engine's FIFO queue — the write-side analogue of the
/// prefetcher's read window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueWindow {
    /// No bound: submits never block (the paper's behaviour, and the
    /// default — async writes queue arbitrarily deep).
    #[default]
    Unbounded,
    /// Size the admission window from the backend stream's telemetry:
    /// `2·BDP / block` outstanding jobs (goodput × latency, doubled so the
    /// pipe stays full while one window is in flight), clamped to
    /// `1..=max`. With no meter — or before it warms up — the window is 1.
    /// A submit beyond the window blocks (on virtual time) until a job
    /// completes, bounding queued payload memory to roughly what the
    /// stream can absorb.
    Auto {
        /// Hard ceiling on outstanding jobs.
        max: usize,
    },
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineCfg {
    /// Number of I/O threads servicing this engine's queue.
    pub io_threads: usize,
    /// Spawn the threads at engine creation (`true`) or on the first
    /// asynchronous call (`false`, the paper's default).
    pub prespawn: bool,
    /// Admission bound on outstanding jobs (default: unbounded).
    pub queue_window: QueueWindow,
}

impl Default for EngineCfg {
    fn default() -> Self {
        EngineCfg {
            io_threads: 1,
            prespawn: false,
            queue_window: QueueWindow::Unbounded,
        }
    }
}

pub(crate) enum IoOp {
    Read {
        offset: u64,
        len: u64,
    },
    Write {
        offset: u64,
        data: Payload,
    },
    ReadList {
        extents: Vec<(u64, u64)>,
    },
    WriteList {
        extents: Vec<(u64, u64)>,
        data: Payload,
        sieve: bool,
    },
}

pub(crate) struct IoJob {
    pub op: IoOp,
    pub done: Completion,
}

/// Cumulative engine counters (for tests and ablation benches).
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Jobs enqueued.
    pub submitted: u64,
    /// Jobs completed by I/O threads.
    pub completed: u64,
    /// I/O threads spawned.
    pub threads_spawned: usize,
}

struct EngineInner {
    threads: Vec<JoinHandle>,
    spawned: usize,
    shut_down: bool,
}

/// The asynchronous I/O engine attached to one open file.
pub(crate) struct IoEngine {
    rt: Arc<dyn Runtime>,
    cfg: EngineCfg,
    queue: Channel<IoJob>,
    file: Arc<RtMutex<Box<dyn AdioFile>>>,
    /// The backend stream's telemetry, for [`QueueWindow::Auto`] sizing.
    meter: Option<Arc<semplar_srb::IoMeter>>,
    /// Jobs admitted and not yet completed (only tracked under `Auto`).
    outstanding: Mutex<u64>,
    /// Completion tokens waking submitters blocked on a full window.
    slots: Channel<()>,
    inner: Mutex<EngineInner>,
    stats: Mutex<EngineStats>,
}

impl IoEngine {
    pub fn new(
        rt: Arc<dyn Runtime>,
        cfg: EngineCfg,
        file: Arc<RtMutex<Box<dyn AdioFile>>>,
        meter: Option<Arc<semplar_srb::IoMeter>>,
    ) -> Arc<IoEngine> {
        assert!(cfg.io_threads >= 1, "engine needs at least one I/O thread");
        let engine = Arc::new(IoEngine {
            queue: Channel::new(&rt),
            slots: Channel::new(&rt),
            rt,
            cfg,
            file,
            meter,
            outstanding: Mutex::new(0),
            inner: Mutex::new(EngineInner {
                threads: Vec::new(),
                spawned: 0,
                shut_down: false,
            }),
            stats: Mutex::new(EngineStats::default()),
        });
        if cfg.prespawn {
            engine.ensure_threads();
        }
        engine
    }

    /// Spawn the I/O thread(s) if not yet running (lazy path: first async
    /// call; subsequent calls find them already alive, §4.3).
    fn ensure_threads(self: &Arc<Self>) {
        let mut g = self.inner.lock();
        if g.shut_down || g.spawned > 0 {
            return;
        }
        for i in 0..self.cfg.io_threads {
            let me = self.clone();
            // Daemon: an idle I/O thread parked on the queue's condition
            // variable must not keep the simulation alive if the file is
            // abandoned without close().
            let h = self
                .rt
                .spawn_daemon(&format!("io-thread-{i}"), Box::new(move || me.io_loop()));
            g.threads.push(h);
            g.spawned += 1;
        }
        self.stats.lock().threads_spawned = g.spawned;
    }

    /// The I/O thread body: dequeue in FIFO order, service via the
    /// synchronous ADIO call, publish completion.
    fn io_loop(&self) {
        while let Ok(job) = self.queue.recv() {
            let result = {
                // One request at a time crosses this file's connection; with
                // several I/O threads on one connection they serialize here
                // (the paper's observation that multiple I/O threads need
                // multiple TCP streams to add parallelism).
                let mut f = self.file.lock();
                match job.op {
                    IoOp::Read { offset, len } => f.read_at(offset, len).map(|p| Status {
                        bytes: p.len(),
                        data: Some(p),
                    }),
                    IoOp::Write { offset, data } => f.write_at(offset, &data).map(|n| Status {
                        bytes: n,
                        data: None,
                    }),
                    IoOp::ReadList { extents } => f.read_list(&extents).map(|p| Status {
                        bytes: p.len(),
                        data: Some(p),
                    }),
                    IoOp::WriteList {
                        extents,
                        data,
                        sieve,
                    } => f.write_list_with(&extents, &data, sieve).map(|n| Status {
                        bytes: n,
                        data: None,
                    }),
                }
            };
            self.stats.lock().completed += 1;
            if matches!(self.cfg.queue_window, QueueWindow::Auto { .. }) {
                *self.outstanding.lock() -= 1;
                let _ = self.slots.send(());
            }
            job.done.set(result);
        }
    }

    /// The admission window for a job of `block` bytes under
    /// [`QueueWindow::Auto`]: `2·BDP / block` off the stream meter (the
    /// prefetcher's read-window formula, applied to the write queue), 1
    /// while there is no telemetry yet.
    fn window_depth(&self, block: u64, max: usize) -> usize {
        let Some(meter) = &self.meter else { return 1 };
        let snap = meter.snapshot();
        if snap.goodput_bps <= 0.0 || snap.latency_s <= 0.0 {
            return 1;
        }
        let blocks = (2.0 * snap.goodput_bps * snap.latency_s / block.max(1) as f64).ceil();
        (blocks as usize).clamp(1, max)
    }

    /// Enqueue a job (compute-thread side of Fig. 2). Under
    /// [`QueueWindow::Auto`] a submit beyond the admission window blocks
    /// until an outstanding job completes — asynchronous I/O keeps the
    /// pipe full without queueing unbounded payload memory.
    pub fn submit(self: &Arc<Self>, op: IoOp, done: Completion) -> IoResult<()> {
        self.ensure_threads();
        if let QueueWindow::Auto { max } = self.cfg.queue_window {
            let block = match &op {
                IoOp::Read { len, .. } => *len,
                IoOp::Write { data, .. } => data.len(),
                // List jobs budget the window by their packed payload size.
                IoOp::ReadList { extents } => extents.iter().map(|&(_, l)| l).sum(),
                IoOp::WriteList { data, .. } => data.len(),
            };
            loop {
                // Re-evaluated each wakeup: the window grows as the meter
                // warms up, and tokens may be stale (condvar-loop style).
                let depth = self.window_depth(block, max) as u64;
                if *self.outstanding.lock() < depth {
                    break;
                }
                if self.slots.recv().is_err() {
                    // Engine shut down; fall through and fail the enqueue.
                    break;
                }
            }
            *self.outstanding.lock() += 1;
        }
        let admitted = self.queue.send(IoJob { op, done }).map_err(|_| {
            if matches!(self.cfg.queue_window, QueueWindow::Auto { .. }) {
                *self.outstanding.lock() -= 1;
            }
            IoError::Closed
        });
        admitted?;
        // Count only jobs actually enqueued: a submit against a shut-down
        // engine must not inflate `submitted` past what can ever complete.
        self.stats.lock().submitted += 1;
        Ok(())
    }

    /// Counters snapshot.
    pub fn stats(&self) -> EngineStats {
        *self.stats.lock()
    }

    /// Queue depth right now (requests waiting for an I/O thread).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Stop accepting work, let the I/O threads drain the queue, and join
    /// them.
    pub fn shutdown(&self) {
        let threads = {
            let mut g = self.inner.lock();
            if g.shut_down {
                return;
            }
            g.shut_down = true;
            self.queue.close();
            self.slots.close();
            std::mem::take(&mut g.threads)
        };
        for t in threads {
            t.join_unwrap();
        }
    }
}
