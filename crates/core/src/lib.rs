//! # semplar
//!
//! A reproduction of **SEMPLAR** — the SRB-Enabled MPI-IO Library for
//! Access to Remote storage — extended with the asynchronous primitives of
//! Ali & Lauria, *Improving the Performance of Remote I/O Using Asynchronous
//! Primitives* (HPDC 2006).
//!
//! The library stacks up exactly as the paper's Fig. 1/Fig. 2 describe:
//!
//! ```text
//!   File (MPI-IO-style API: read_at/write_at/iread_at/iwrite_at/wait/test)
//!     │                          │
//!     │ sync calls               │ async calls → FIFO I/O queue → I/O threads
//!     ▼                          ▼                 (each servicing the sync op)
//!   ADIO (AdioFs/AdioFile) ───────
//!     ├─ SrbFs   — one TCP connection per open, to the SRB server
//!     └─ MemFs   — local in-memory backend (UFS stand-in)
//! ```
//!
//! On top of the core API sit the paper's three optimizations:
//!
//! 1. **Computation/I-O overlap** — issue [`File::iwrite_at`], compute, then
//!    [`Request::wait`] (§7.1);
//! 2. **Multiple TCP connections per node** — [`StripedFile`] opens the file
//!    N times and fans blocks out round-robin (§7.2, incl. the paper's
//!    library-level future work);
//! 3. **On-the-fly compression** — [`CompressedWriter`] pipelines LZ
//!    compression of 1 MB blocks with their transmission (§7.3).

#![warn(missing_docs)]

pub mod adio;
pub mod engine;
pub mod fedfs;
pub mod file;
pub mod lease;
pub mod pipeline;
pub mod pointer;
pub mod prefetch;
pub mod pvfs;
pub mod request;
pub mod srbfs;
pub mod staging;
pub mod stripe;

pub use adio::{
    merge_extents, pack_extents, split_packed, AdioFile, AdioFs, IoError, IoResult, MemFs,
};
pub use engine::{EngineCfg, EngineStats, QueueWindow};
pub use fedfs::{FedFs, FedShard, MigrationStats, ReconcileLedger};
pub use file::{with_file, File};
pub use lease::{LeaseCache, LeaseStats};
pub use pipeline::{
    CompressCheckpoint, CompressedReader, CompressedWriter, ComputeModel, DEFAULT_BLOCK,
};
pub use pointer::{FilePointer, Whence};
pub use prefetch::Prefetcher;
pub use pvfs::PvfsLike;
pub use request::{Request, Status};
pub use srbfs::{RecoveryStats, SrbFs, SrbFsConfig, RESUME_BLOCK};
pub use staging::{stage_in, stage_out, STAGE_BLOCK};
pub use stripe::{MultiRequest, StreamPlacement, StripeStats, StripeUnit, StripedFile};

// Re-export the substrate types users need at the API surface.
pub use semplar_srb::{IoMeter, MeterSnapshot, OpenFlags, Payload, SlotPolicy};

#[cfg(test)]
mod tests {
    use super::*;
    use semplar_netsim::{Bw, Network};
    use semplar_runtime::{simulate, Dur, Runtime};
    use semplar_srb::vault::DiskSpec;
    use semplar_srb::{ConnRoute, SrbServer, SrbServerCfg};
    use std::sync::Arc;

    fn slow_memfs(rt: &Arc<dyn Runtime>) -> Arc<MemFs> {
        MemFs::with_disk(
            rt.clone(),
            DiskSpec {
                bandwidth: Bw::mbyte_per_s(10.0),
                seek: Dur::ZERO,
                ..DiskSpec::default()
            },
        )
    }

    #[test]
    fn sync_file_roundtrip_on_memfs() {
        simulate(|rt| {
            let fs = MemFs::new(rt.clone());
            let f = File::open(&rt, &fs, "/a", OpenFlags::CreateRw).unwrap();
            f.write_at(0, &Payload::bytes(b"semplar".to_vec())).unwrap();
            assert_eq!(f.read_at(0, 7).unwrap().data().unwrap(), b"semplar");
            assert_eq!(f.size().unwrap(), 7);
            f.close().unwrap();
        });
    }

    #[test]
    fn async_write_completes_and_persists() {
        simulate(|rt| {
            let fs = MemFs::new(rt.clone());
            let f = File::open(&rt, &fs, "/a", OpenFlags::CreateRw).unwrap();
            let r = f.iwrite_at(0, Payload::bytes(vec![7; 100]));
            let st = r.wait().unwrap();
            assert_eq!(st.bytes, 100);
            assert_eq!(f.read_at(0, 100).unwrap().len(), 100);
            f.close().unwrap();
            assert_eq!(fs.get("/a").unwrap(), vec![7; 100]);
        });
    }

    /// Regression: a submit against a closed engine must fail *and* leave
    /// the `submitted` counter untouched — it used to count the job first
    /// and then fail the enqueue, so `submitted` could exceed what would
    /// ever complete.
    #[test]
    fn rejected_submit_is_not_counted() {
        simulate(|rt| {
            let fs = MemFs::new(rt.clone());
            fs.put("/r", b"payload".to_vec());
            let f = File::open(&rt, &fs, "/r", OpenFlags::Read).unwrap();
            f.iread_at(0, 7).wait().unwrap();
            f.close().unwrap();
            let before = f.engine_stats();
            assert_eq!(before.submitted, 1);
            assert_eq!(before.completed, 1);
            assert!(f.iread_at(0, 7).wait().is_err());
            let after = f.engine_stats();
            assert_eq!(after.submitted, before.submitted);
            assert_eq!(after.completed, before.completed);
        });
    }

    #[test]
    fn async_read_returns_data_in_status() {
        simulate(|rt| {
            let fs = MemFs::new(rt.clone());
            fs.put("/r", b"async-data".to_vec());
            let f = File::open(&rt, &fs, "/r", OpenFlags::Read).unwrap();
            let st = f.iread_at(6, 4).wait().unwrap();
            assert_eq!(st.data.unwrap().data().unwrap(), b"data");
            f.close().unwrap();
        });
    }

    /// The paper's core premise, in one test: a 1 s write overlapped with
    /// 1 s of computation takes ~1 s with asynchronous I/O and ~2 s with
    /// synchronous I/O.
    #[test]
    fn overlap_hides_io_behind_computation() {
        let (sync_t, async_t) = simulate(|rt| {
            let fs = slow_memfs(&rt); // 10 MB/s disk
            let payload = || Payload::sized(10_000_000); // 1 s of I/O

            let f = File::open(&rt, &fs, "/sync", OpenFlags::CreateRw).unwrap();
            let t0 = rt.now();
            f.write_at(0, &payload()).unwrap(); // 1 s
            rt.sleep(Dur::from_secs(1)); // "compute" 1 s
            let sync_t = rt.now() - t0;
            f.close().unwrap();

            let f = File::open(&rt, &fs, "/async", OpenFlags::CreateRw).unwrap();
            let t0 = rt.now();
            let req = f.iwrite_at(0, payload());
            rt.sleep(Dur::from_secs(1)); // compute while the I/O thread writes
            req.wait().unwrap();
            let async_t = rt.now() - t0;
            f.close().unwrap();
            (sync_t, async_t)
        });
        assert!((sync_t.as_secs_f64() - 2.0).abs() < 1e-6, "sync {sync_t}");
        assert!(
            (async_t.as_secs_f64() - 1.0).abs() < 1e-3,
            "async {async_t}"
        );
    }

    #[test]
    fn test_polls_without_blocking() {
        simulate(|rt| {
            let fs = slow_memfs(&rt);
            let f = File::open(&rt, &fs, "/t", OpenFlags::CreateRw).unwrap();
            let req = f.iwrite_at(0, Payload::sized(5_000_000)); // 0.5 s
            assert!(req.test().is_none(), "write completed implausibly fast");
            rt.sleep(Dur::from_secs(1));
            match req.test() {
                Some(Ok(st)) => assert_eq!(st.bytes, 5_000_000),
                other => panic!("expected completion, got {other:?}"),
            }
            f.close().unwrap();
        });
    }

    #[test]
    fn queued_requests_complete_in_fifo_order() {
        simulate(|rt| {
            let fs = slow_memfs(&rt);
            let f = File::open(&rt, &fs, "/fifo", OpenFlags::CreateRw).unwrap();
            let r1 = f.iwrite_at(0, Payload::sized(1_000_000));
            let r2 = f.iwrite_at(1_000_000, Payload::sized(1_000_000));
            let r3 = f.iwrite_at(2_000_000, Payload::sized(1_000_000));
            // If r3 is done, FIFO servicing means r1 and r2 are done too.
            r3.wait().unwrap();
            assert!(r1.test().is_some() && r2.test().is_some());
            let stats = f.engine_stats();
            assert_eq!(stats.submitted, 3);
            assert_eq!(stats.completed, 3);
            assert_eq!(stats.threads_spawned, 1, "default engine is one thread");
            f.close().unwrap();
        });
    }

    #[test]
    fn io_thread_spawns_lazily_by_default() {
        simulate(|rt| {
            let fs = MemFs::new(rt.clone());
            let f = File::open(&rt, &fs, "/lazy", OpenFlags::CreateRw).unwrap();
            assert_eq!(f.engine_stats().threads_spawned, 0);
            f.iwrite_at(0, Payload::sized(1)).wait().unwrap();
            assert_eq!(f.engine_stats().threads_spawned, 1);
            f.close().unwrap();
        });
    }

    #[test]
    fn prespawn_starts_pool_eagerly() {
        simulate(|rt| {
            let fs = MemFs::new(rt.clone());
            let f = File::open_with(
                &rt,
                &fs,
                "/pool",
                OpenFlags::CreateRw,
                EngineCfg {
                    io_threads: 3,
                    prespawn: true,
                    ..EngineCfg::default()
                },
            )
            .unwrap();
            assert_eq!(f.engine_stats().threads_spawned, 3);
            f.close().unwrap();
        });
    }

    /// `QueueWindow::Auto` on a backend with no meter (MemFs): the window
    /// stays at 1, so a second submit blocks until the outstanding job
    /// completes and the FIFO queue never holds more than one request.
    #[test]
    fn auto_window_without_meter_serializes_submits() {
        simulate(|rt| {
            let fs = slow_memfs(&rt);
            let f = File::open_with(
                &rt,
                &fs,
                "/win",
                OpenFlags::CreateRw,
                EngineCfg {
                    queue_window: QueueWindow::Auto { max: 8 },
                    ..EngineCfg::default()
                },
            )
            .unwrap();
            let mut max_depth = 0usize;
            let mut reqs = Vec::new();
            for i in 0..6u64 {
                reqs.push(f.iwrite_at(i * 4096, Payload::bytes(vec![i as u8; 4096])));
                max_depth = max_depth.max(f.queue_depth());
            }
            for r in reqs {
                assert_eq!(r.wait().unwrap().bytes, 4096);
            }
            assert!(max_depth <= 1, "no-meter Auto window leaked: {max_depth}");
            let s = f.engine_stats();
            assert_eq!(s.submitted, 6);
            assert_eq!(s.completed, 6);
            f.close().unwrap();
            assert_eq!(fs.get("/win").unwrap()[5 * 4096], 5);
        });
    }

    /// `QueueWindow::Auto` over a real metered SRB stream: once the meter
    /// warms up, the window opens past 1 (2·BDP/block, the prefetcher's
    /// read formula mirrored on the write queue) but never past `max`.
    #[test]
    fn auto_window_opens_with_warm_meter_and_respects_max() {
        simulate(|rt| {
            let fs = srb_fixture(&rt, 50.0);
            let f = File::open_with(
                &rt,
                &fs,
                "/warm",
                OpenFlags::CreateRw,
                EngineCfg {
                    queue_window: QueueWindow::Auto { max: 8 },
                    ..EngineCfg::default()
                },
            )
            .unwrap();
            // Warm the stream meter with synchronous 1 MiB writes so the
            // EWMA latency reflects payload exchanges, not just the open.
            for i in 0..3u64 {
                f.write_at(i << 20, &Payload::sized(1 << 20)).unwrap();
            }
            // 128 KiB async blocks: 2·BDP is several blocks on this path.
            let block = 128 * 1024u64;
            let mut max_depth = 0usize;
            let mut reqs = Vec::new();
            for i in 0..16u64 {
                reqs.push(f.iwrite_at((3 << 20) + i * block, Payload::sized(block)));
                max_depth = max_depth.max(f.queue_depth());
            }
            for r in reqs {
                assert_eq!(r.wait().unwrap().bytes, block);
            }
            assert!(max_depth >= 2, "warm Auto window never opened: {max_depth}");
            assert!(max_depth <= 8, "Auto window exceeded max: {max_depth}");
            f.close().unwrap();
        });
    }

    #[test]
    fn wait_all_collects_statuses() {
        simulate(|rt| {
            let fs = MemFs::new(rt.clone());
            let f = File::open(&rt, &fs, "/wa", OpenFlags::CreateRw).unwrap();
            let reqs: Vec<Request> = (0..4)
                .map(|i| f.iwrite_at(i * 10, Payload::sized(10)))
                .collect();
            let sts = Request::wait_all(&reqs).unwrap();
            assert_eq!(sts.len(), 4);
            assert!(sts.iter().all(|s| s.bytes == 10));
            assert!(Request::test_all(&reqs));
            f.close().unwrap();
        });
    }

    #[test]
    fn zero_length_ops_complete_immediately() {
        simulate(|rt| {
            let fs = MemFs::new(rt.clone());
            let f = File::open(&rt, &fs, "/z", OpenFlags::CreateRw).unwrap();
            assert_eq!(f.iwrite_at(0, Payload::sized(0)).wait().unwrap().bytes, 0);
            assert_eq!(f.iread_at(0, 0).wait().unwrap().bytes, 0);
            f.close().unwrap();
        });
    }

    #[test]
    fn errors_propagate_through_requests() {
        simulate(|rt| {
            let fs = MemFs::new(rt.clone());
            fs.put("/ro", vec![1, 2, 3]);
            let f = File::open(&rt, &fs, "/ro", OpenFlags::Read).unwrap();
            let err = f.iwrite_at(0, Payload::sized(1)).wait().unwrap_err();
            assert!(matches!(err, IoError::BadAccess(_)));
            f.close().unwrap();
        });
    }

    fn srb_fixture(rt: &Arc<dyn Runtime>, cap_mbps: f64) -> Arc<SrbFs> {
        let net = Network::new(rt.clone());
        let up = net.add_link("up", Bw::mbps(100.0), Dur::from_millis(5));
        let down = net.add_link("down", Bw::mbps(100.0), Dur::from_millis(5));
        let server = SrbServer::new(net, SrbServerCfg::default());
        server.mcat().add_user("u", "p");
        SrbFs::new(
            server,
            SrbFsConfig {
                route: ConnRoute {
                    fwd: vec![up],
                    rev: vec![down],
                    send_cap: Some(Bw::mbps(cap_mbps)),
                    recv_cap: Some(Bw::mbps(cap_mbps)),
                    bus: None,
                },
                user: "u".into(),
                password: "p".into(),
            },
        )
    }

    #[test]
    fn srbfs_roundtrips_real_data_through_the_full_stack() {
        simulate(|rt| {
            let fs = srb_fixture(&rt, 50.0);
            let f = File::open(&rt, &fs, "/remote", OpenFlags::CreateRw).unwrap();
            let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
            f.iwrite_at(0, Payload::bytes(data.clone())).wait().unwrap();
            let back = f.read_at(0, 10_000).unwrap();
            assert_eq!(back.data().unwrap(), &data[..]);
            f.close().unwrap();
        });
    }

    /// [`StreamPlacement::Congestion`]: sibling streams ask the shared
    /// pool for the least-pressure slot instead of pinning slot `i`. With
    /// as many slots as streams they still land on distinct transports
    /// (distinct meters), and data round-trips intact.
    #[test]
    fn congestion_placement_spreads_streams_across_slots() {
        simulate(|rt| {
            let net = Network::new(rt.clone());
            let up = net.add_link("up", Bw::mbps(100.0), Dur::from_millis(5));
            let down = net.add_link("down", Bw::mbps(100.0), Dur::from_millis(5));
            let server = SrbServer::new(net, SrbServerCfg::default());
            server.mcat().add_user("u", "p");
            let fs = SrbFs::with_slot_policy(
                server,
                SrbFsConfig {
                    route: ConnRoute {
                        fwd: vec![up],
                        rev: vec![down],
                        send_cap: None,
                        recv_cap: None,
                        bus: None,
                    },
                    user: "u".into(),
                    password: "p".into(),
                },
                semplar_srb::PoolPolicy::Shared {
                    max_streams: 2,
                    max_inflight: 8,
                },
                SlotPolicy::Congestion,
                semplar_srb::RetryPolicy::default(),
            );
            let f = StripedFile::open_placed(
                &rt,
                &fs,
                "/spread",
                OpenFlags::CreateRw,
                2,
                StripeUnit::Bytes(4096),
                StreamPlacement::Congestion,
            )
            .unwrap();
            let data: Vec<u8> = (0..32_768u32).map(|i| (i % 239) as u8).collect();
            f.write_at(0, Payload::bytes(data.clone())).unwrap();
            let back = f.read_at(0, data.len() as u64).unwrap();
            assert_eq!(back.data().unwrap(), &data[..]);
            let meters = f.stream_meters();
            assert_eq!(meters.len(), 2);
            let (a, b) = (meters[0].as_ref().unwrap(), meters[1].as_ref().unwrap());
            assert!(
                !Arc::ptr_eq(a, b),
                "least-pressure placement put both streams on one transport"
            );
            f.close().unwrap();
        });
    }

    /// §7.2's headline: two window-capped streams nearly double throughput,
    /// via the library-level StripedFile.
    #[test]
    fn striped_file_doubles_window_limited_throughput() {
        let (one, two) = simulate(|rt| {
            let fs = srb_fixture(&rt, 8.0); // 8 Mb/s per-stream cap
            let mb = 4_000_000u64;

            let f1 = StripedFile::open(&rt, &fs, "/one", OpenFlags::CreateRw, 1, StripeUnit::Even)
                .unwrap();
            let t0 = rt.now();
            f1.write_at(0, Payload::sized(mb)).unwrap();
            let one = rt.now() - t0;
            f1.close().unwrap();

            let f2 = StripedFile::open(&rt, &fs, "/two", OpenFlags::CreateRw, 2, StripeUnit::Even)
                .unwrap();
            let t0 = rt.now();
            f2.write_at(0, Payload::sized(mb)).unwrap();
            let two = rt.now() - t0;
            f2.close().unwrap();
            (one, two)
        });
        let speedup = one.as_secs_f64() / two.as_secs_f64();
        assert!(
            speedup > 1.7,
            "expected ~2x from double streams, got {speedup:.2} ({one} vs {two})"
        );
    }

    #[test]
    fn striped_reads_reassemble_in_order() {
        simulate(|rt| {
            let fs = MemFs::new(rt.clone());
            let data: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
            fs.put("/s", data.clone());
            let f = StripedFile::open(&rt, &fs, "/s", OpenFlags::Read, 3, StripeUnit::Bytes(64))
                .unwrap();
            let back = f.read_at(0, 1000).unwrap();
            assert_eq!(back.data().unwrap(), &data[..]);
            // Unaligned range.
            let back = f.read_at(100, 333).unwrap();
            assert_eq!(back.data().unwrap(), &data[100..433]);
            f.close().unwrap();
        });
    }

    #[test]
    fn striped_writes_preserve_data_across_streams() {
        simulate(|rt| {
            let fs = MemFs::new(rt.clone());
            let data: Vec<u8> = (0..100_000u32).map(|i| (i * 7 % 256) as u8).collect();
            let f = StripedFile::open(
                &rt,
                &fs,
                "/sw",
                OpenFlags::CreateRw,
                4,
                StripeUnit::Bytes(1024),
            )
            .unwrap();
            f.write_at(0, Payload::bytes(data.clone())).unwrap();
            f.close().unwrap();
            assert_eq!(fs.get("/sw").unwrap(), data);
        });
    }

    #[test]
    fn wait_any_returns_the_fastest_request() {
        simulate(|rt| {
            let slow = slow_memfs(&rt); // 10 MB/s
            let fast = MemFs::new(rt.clone());
            let f_slow = File::open(&rt, &slow, "/s", OpenFlags::CreateRw).unwrap();
            let f_fast = File::open(&rt, &fast, "/f", OpenFlags::CreateRw).unwrap();
            let t0 = rt.now();
            let reqs = vec![
                f_slow.iwrite_at(0, Payload::sized(10_000_000)), // 1 s
                f_fast.iwrite_at(0, Payload::sized(10_000_000)), // instant
            ];
            let (idx, res) = Request::wait_any(&rt, &reqs);
            assert_eq!(idx, 1, "the fast backend should win");
            assert_eq!(res.unwrap().bytes, 10_000_000);
            assert!(rt.now() - t0 < Dur::from_millis(100));
            // The slow one still completes.
            reqs[0].wait().unwrap();
            f_slow.close().unwrap();
            f_fast.close().unwrap();
        });
    }

    #[test]
    fn redundant_read_accepts_first_stream() {
        simulate(|rt| {
            let fs = MemFs::new(rt.clone());
            let data: Vec<u8> = (0..5000u32).map(|i| (i % 256) as u8).collect();
            fs.put("/r", data.clone());
            let f =
                StripedFile::open(&rt, &fs, "/r", OpenFlags::Read, 3, StripeUnit::Even).unwrap();
            let got = f.redundant_read_at(0, 5000).unwrap();
            assert_eq!(got.data().unwrap(), &data[..]);
            f.close().unwrap();
        });
    }

    #[test]
    fn compressed_writer_roundtrips() {
        simulate(|rt| {
            let fs = MemFs::new(rt.clone());
            let codec = semplar_compress::Lzf;
            let data: Vec<u8> = b"GATTACA".repeat(50_000); // 350 KB, compressible
            let f = File::open(&rt, &fs, "/z", OpenFlags::CreateRw).unwrap();
            let mut w = CompressedWriter::new(&f, &codec).block_size(64 * 1024);
            w.write(&data).unwrap();
            let (bin, bout) = w.finish().unwrap();
            assert_eq!(bin, data.len() as u64);
            assert!(bout < bin / 2, "poor ratio: {bout}/{bin}");
            let back = CompressedReader::read_all(&f, &codec).unwrap();
            assert_eq!(back, data);
            f.close().unwrap();
        });
    }

    /// §7.3's mechanism: with the pipeline, compression time hides behind
    /// transmission; synchronously it adds up.
    #[test]
    fn pipelined_compression_beats_synchronous() {
        let (sync_t, async_t) = simulate(|rt| {
            let codec = semplar_compress::Lzf;
            // Nearly incompressible data so transmission time is comparable
            // to the modelled compression time (the regime where pipelining
            // matters most is compute ≈ transfer).
            let mut x: u64 = 0x2545F4914F6CDD1D;
            let data: Vec<u8> = (0..8 << 20)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x >> 24) as u8
                })
                .collect();
            let cpu = semplar_netsim::Cpu::new(rt.clone(), 2.0, 1.0);
            let model = ComputeModel {
                cpu,
                rate: Bw::mbyte_per_s(10.0), // deliberately slow to expose the effect
            };
            let run = |depth: usize, path: &str| {
                let fs = slow_memfs(&rt);
                let f = File::open(&rt, &fs, path, OpenFlags::CreateRw).unwrap();
                let t0 = rt.now();
                let mut w = CompressedWriter::new(&f, &codec)
                    .depth(depth)
                    .compute_model(model.clone());
                w.write(&data).unwrap();
                w.finish().unwrap();
                let dt = rt.now() - t0;
                f.close().unwrap();
                dt
            };
            (run(0, "/sync"), run(2, "/async"))
        });
        assert!(
            async_t.as_secs_f64() < sync_t.as_secs_f64() * 0.75,
            "pipelining gained too little: {async_t} vs {sync_t}"
        );
    }

    /// Goodput-weighted block *sizes*: on two streams of very different
    /// bandwidth, `StripeUnit::AdaptiveSized` issues smaller blocks on the
    /// slow stream once the meters warm up — not just fewer of them.
    #[test]
    fn adaptive_sized_shrinks_blocks_on_the_slow_stream() {
        simulate(|rt| {
            let net = Network::new(rt.clone());
            let mut routes = Vec::new();
            for (i, cap) in [None, Some(Bw::mbps(4.0))].into_iter().enumerate() {
                let up = net.add_link(&format!("up{i}"), Bw::mbps(100.0), Dur::from_millis(5));
                let down = net.add_link(&format!("down{i}"), Bw::mbps(100.0), Dur::from_millis(5));
                routes.push(ConnRoute {
                    fwd: vec![up],
                    rev: vec![down],
                    send_cap: cap,
                    recv_cap: cap,
                    bus: None,
                });
            }
            let server = SrbServer::new(net, SrbServerCfg::default());
            server.mcat().add_user("u", "p");
            let fs = SrbFs::with_stream_routes(
                server,
                SrbFsConfig {
                    route: routes[0].clone(),
                    user: "u".into(),
                    password: "p".into(),
                },
                routes,
                semplar_srb::PoolPolicy::PerOpen,
                semplar_srb::RetryPolicy::default(),
            );
            let f = StripedFile::open(
                &rt,
                &fs,
                "/sized",
                OpenFlags::CreateRw,
                2,
                StripeUnit::AdaptiveSized {
                    block: 64 * 1024,
                    min_block: 4 * 1024,
                },
            )
            .unwrap();
            // Warm-up pass: with no telemetry yet both streams tile at the
            // full block size, and the meters learn the 25x goodput gap.
            f.write_at(0, Payload::sized(1 << 20)).unwrap();
            let warm = f.stripe_stats();
            // Measured pass: block sizes now follow the goodput weights.
            f.write_at(1 << 20, Payload::sized(2 << 20)).unwrap();
            let s = f.stripe_stats();
            let avg = |i: usize| {
                (s.bytes[i] - warm.bytes[i]) as f64 / (s.blocks[i] - warm.blocks[i]).max(1) as f64
            };
            let (fast, slow) = (avg(0), avg(1));
            // WFQ migration mixes some full-size blocks onto the slow
            // stream, so compare averages with a margin rather than the
            // raw scaled sizes.
            assert!(
                slow < fast * 0.8,
                "slow stream should get smaller blocks on average: fast avg {fast:.0} B, slow avg {slow:.0} B"
            );
            f.close().unwrap();
        });
    }

    /// Build a server+fs pair (no stream caps) so tests can reach the
    /// server for fault injection and server-side checksums.
    fn srb_pair(rt: &Arc<dyn Runtime>) -> (Arc<semplar_srb::SrbServer>, Arc<SrbFs>) {
        let net = Network::new(rt.clone());
        let up = net.add_link("up", Bw::mbps(100.0), Dur::from_millis(5));
        let down = net.add_link("down", Bw::mbps(100.0), Dur::from_millis(5));
        let server = SrbServer::new(net, SrbServerCfg::default());
        server.mcat().add_user("u", "p");
        let fs = SrbFs::new(
            server.clone(),
            SrbFsConfig {
                route: ConnRoute {
                    fwd: vec![up],
                    rev: vec![down],
                    send_cap: None,
                    recv_cap: None,
                    bus: None,
                },
                user: "u".into(),
                password: "p".into(),
            },
        );
        (server, fs)
    }

    /// Read leases end to end: the second read of a leased range touches
    /// neither the wire nor the disk — it completes in zero virtual time.
    #[test]
    fn leased_reads_are_served_locally_after_first_fetch() {
        simulate(|rt| {
            let (_server, fs) = srb_pair(&rt);
            fs.enable_read_leases(1 << 20);
            let data: Vec<u8> = (0..20_000u32).map(|i| (i % 241) as u8).collect();
            let f = File::open(&rt, &fs, "/hot", OpenFlags::CreateRw).unwrap();
            f.write_at(0, &Payload::bytes(data.clone())).unwrap();
            let first = f.read_at(0, 20_000).unwrap();
            assert_eq!(first.data().unwrap(), &data[..]);
            let t0 = rt.now();
            let second = f.read_at(4_000, 8_000).unwrap();
            assert_eq!(
                rt.now() - t0,
                Dur::ZERO,
                "warm read should not hit the wire"
            );
            assert_eq!(second.data().unwrap(), &data[4_000..12_000]);
            let s = fs.lease_stats();
            assert_eq!(s.hits, 1);
            assert!(s.bytes_saved >= 8_000);
            f.close().unwrap();
        });
    }

    /// Coherence: an acked overlapping write — through a *different* open —
    /// revokes the lease, so the next read returns the new bytes.
    #[test]
    fn overlapping_write_revokes_the_lease() {
        simulate(|rt| {
            let (_server, fs) = srb_pair(&rt);
            fs.enable_read_leases(1 << 20);
            let f = File::open(&rt, &fs, "/coh", OpenFlags::CreateRw).unwrap();
            f.write_at(0, &Payload::bytes(vec![1u8; 1000])).unwrap();
            assert_eq!(
                f.read_at(0, 1000).unwrap().data().unwrap(),
                &[1u8; 1000][..]
            );
            let g = File::open(&rt, &fs, "/coh", OpenFlags::CreateRw).unwrap();
            g.write_at(500, &Payload::bytes(vec![2u8; 100])).unwrap();
            g.close().unwrap();
            let back = f.read_at(0, 1000).unwrap();
            let bytes = back.data().unwrap();
            assert_eq!(&bytes[..500], &[1u8; 500][..]);
            assert_eq!(&bytes[500..600], &[2u8; 100][..]);
            assert!(fs.lease_stats().invalidations >= 1);
            f.close().unwrap();
        });
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The list path is semantically identical to the loop of
        /// single-extent ops it replaces: same bytes on the server
        /// (server-side checksums agree), same bytes read back —
        /// across every sieve threshold, across stripe streams, and
        /// across a mid-list transient connection reset.
        #[test]
        fn list_ops_match_single_op_sequence(
            lens in proptest::collection::vec((1u64..3000, 0u64..3000), 1..8),
            base in 0u64..4096,
            threshold_sel in 0u8..3,
            streams in 1usize..4,
            fault in any::<bool>(),
        ) {
            simulate(move |rt| {
                let (server, fs) = srb_pair(&rt);
                fs.set_sieve_threshold([0.0, 0.5, 1.0][threshold_sel as usize]);
                let mut extents = Vec::new();
                let mut off = base;
                for &(len, gap) in &lens {
                    extents.push((off, len));
                    off += len + gap;
                }
                let total: u64 = extents.iter().map(|&(_, l)| l).sum();
                let packed: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();

                // Reference: one synchronous write per extent.
                let f = File::open(&rt, &fs, "/single", OpenFlags::CreateRw).unwrap();
                let mut cursor = 0usize;
                for &(eoff, elen) in &extents {
                    let piece = packed[cursor..cursor + elen as usize].to_vec();
                    cursor += elen as usize;
                    prop_assert_eq!(f.write_at(eoff, &Payload::bytes(piece)).unwrap(), elen);
                }
                f.close().unwrap();

                // List path, optionally striped, optionally hit by a
                // transient fault right before the list op so the
                // whole-list idempotent retry has to re-issue it.
                let (n, back) = if streams == 1 {
                    let f = File::open(&rt, &fs, "/list", OpenFlags::CreateRw).unwrap();
                    if fault {
                        server.reset_all_connections();
                    }
                    let n = f.write_list(&extents, &Payload::bytes(packed.clone())).unwrap();
                    if fault {
                        server.reset_all_connections();
                    }
                    let back = f.read_list(&extents).unwrap();
                    f.close().unwrap();
                    (n, back)
                } else {
                    let f = StripedFile::open(
                        &rt, &fs, "/list", OpenFlags::CreateRw,
                        streams, StripeUnit::Bytes(1024),
                    ).unwrap();
                    if fault {
                        server.reset_all_connections();
                    }
                    let n = f.write_list(&extents, &Payload::bytes(packed.clone())).unwrap();
                    if fault {
                        server.reset_all_connections();
                    }
                    let back = f.read_list(&extents).unwrap();
                    f.close().unwrap();
                    (n, back)
                };
                prop_assert_eq!(n, total);
                prop_assert_eq!(back.data().unwrap(), &packed[..]);

                // Bit-identical files, per the server's own checksums.
                let admin = fs.admin_conn().unwrap();
                prop_assert_eq!(
                    admin.checksum("/single").unwrap(),
                    admin.checksum("/list").unwrap()
                );
            });
        }

        /// The hole mask: write-back sieving (threshold 1.0 forces the
        /// read-modify-write path whenever the list has holes) must never
        /// alter a byte the caller didn't write.
        #[test]
        fn write_back_sieving_preserves_unwritten_bytes(
            lens in proptest::collection::vec((1u64..800, 1u64..800), 2..8),
            base in 0u64..512,
        ) {
            simulate(move |rt| {
                let (_server, fs) = srb_pair(&rt);
                fs.set_sieve_threshold(1.0);
                let mut extents = Vec::new();
                let mut off = base;
                for &(len, gap) in &lens {
                    extents.push((off, len));
                    off += len + gap;
                }
                let total: u64 = extents.iter().map(|&(_, l)| l).sum();
                let size = off + 256; // slack past the last extent
                let original: Vec<u8> = (0..size).map(|i| (i.wrapping_mul(7) % 253) as u8).collect();
                let packed: Vec<u8> = (0..total).map(|i| (0xA0 ^ (i % 97)) as u8).collect();

                let f = File::open(&rt, &fs, "/holes", OpenFlags::CreateRw).unwrap();
                f.write_at(0, &Payload::bytes(original.clone())).unwrap();
                prop_assert_eq!(f.write_list(&extents, &Payload::bytes(packed.clone())).unwrap(), total);

                let mut expected = original;
                let mut cursor = 0usize;
                for &(eoff, elen) in &extents {
                    expected[eoff as usize..(eoff + elen) as usize]
                        .copy_from_slice(&packed[cursor..cursor + elen as usize]);
                    cursor += elen as usize;
                }
                let back = f.read_at(0, size).unwrap();
                prop_assert_eq!(back.data().unwrap(), &expected[..]);
                prop_assert_eq!(f.size().unwrap(), size);
                f.close().unwrap();
            });
        }
    }

    #[test]
    fn with_file_closes_on_success_and_error() {
        simulate(|rt| {
            let fs = MemFs::new(rt.clone());
            let n = with_file(&rt, &fs, "/w", OpenFlags::CreateRw, |f| {
                f.write_at(0, &Payload::sized(5))
            })
            .unwrap();
            assert_eq!(n, 5);
            let err = with_file(&rt, &fs, "/nope", OpenFlags::Read, |_| Ok(())).unwrap_err();
            assert!(matches!(err, IoError::NotFound(_)));
        });
    }
}
