//! Whole-file staging between a remote file and a local backend.
//!
//! The paper's related work (§2) contrasts SEMPLAR with staging-based
//! systems — GASS moves whole files to local storage before access, RFS
//! stages writes through a local buffer. This module shows that such
//! staging is a few lines *on top of* the asynchronous primitives: a
//! depth-N pipeline of `iread`s (or `iwrite`s) keeps the WAN connection
//! busy while the local disk works, so `stage_in`/`stage_out` run at
//! ~max(WAN, disk) speed instead of their sum.

use std::collections::VecDeque;
use std::sync::Arc;

use semplar_runtime::Runtime;
use semplar_srb::{OpenFlags, Payload};

use crate::adio::{AdioFs, IoResult};
use crate::file::File;
use crate::request::Request;

/// Default staging block size.
pub const STAGE_BLOCK: u64 = 1 << 20;

/// Copy the whole `remote` file into `local_path` on `local`, pipelining
/// remote reads against local writes. Returns bytes staged.
pub fn stage_in(
    rt: &Arc<dyn Runtime>,
    remote: &File,
    local: &dyn AdioFs,
    local_path: &str,
    block: u64,
    depth: usize,
) -> IoResult<u64> {
    assert!(block > 0 && depth > 0);
    let total = remote.size()?;
    let mut dst = local.open(local_path, OpenFlags::CreateRw)?;
    let mut inflight: VecDeque<(u64, Request)> = VecDeque::new();
    let mut issued = 0u64;
    let mut staged = 0u64;
    let _ = rt; // the pipeline blocks through the file's own runtime
    while staged < total || !inflight.is_empty() {
        while issued < total && inflight.len() < depth {
            let len = block.min(total - issued);
            inflight.push_back((issued, remote.iread_at(issued, len)));
            issued += len;
        }
        let (off, req) = inflight.pop_front().expect("pipeline non-empty");
        let status = req.wait()?;
        let data = status.data.unwrap_or(Payload::sized(status.bytes));
        dst.write_at(off, &data)?;
        staged += status.bytes;
        if status.bytes == 0 {
            break; // defensive: remote shrank underneath us
        }
    }
    dst.close()?;
    Ok(staged)
}

/// Copy `local_path` from `local` into the `remote` file, pipelining local
/// reads + remote `iwrite`s. Returns bytes staged.
pub fn stage_out(
    rt: &Arc<dyn Runtime>,
    local: &dyn AdioFs,
    local_path: &str,
    remote: &File,
    block: u64,
    depth: usize,
) -> IoResult<u64> {
    assert!(block > 0 && depth > 0);
    let _ = rt;
    let mut src = local.open(local_path, OpenFlags::Read)?;
    let total = src.size()?;
    let mut inflight: VecDeque<Request> = VecDeque::new();
    let mut off = 0u64;
    while off < total {
        let len = block.min(total - off);
        let data = src.read_at(off, len)?; // local read (fast, modelled)
        while inflight.len() >= depth {
            inflight.pop_front().expect("non-empty").wait()?;
        }
        inflight.push_back(remote.iwrite_at(off, data));
        off += len;
    }
    for r in inflight {
        r.wait()?;
    }
    src.close()?;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adio::MemFs;
    use semplar_netsim::Bw;
    use semplar_runtime::{simulate, Dur};
    use semplar_srb::vault::DiskSpec;

    fn slow_fs(rt: &Arc<dyn Runtime>, mbyte_s: f64) -> Arc<MemFs> {
        MemFs::with_disk(
            rt.clone(),
            DiskSpec {
                bandwidth: Bw::mbyte_per_s(mbyte_s),
                seek: Dur::ZERO,
                ..DiskSpec::default()
            },
        )
    }

    #[test]
    fn stage_in_roundtrips_data() {
        simulate(|rt| {
            let remote_fs = MemFs::new(rt.clone());
            let data: Vec<u8> = (0..300_000u32).map(|i| (i % 251) as u8).collect();
            remote_fs.put("/r", data.clone());
            let remote = File::open(&rt, &remote_fs, "/r", OpenFlags::Read).unwrap();
            let local = MemFs::new(rt.clone());
            let n = stage_in(&rt, &remote, &local, "/cache", 64 * 1024, 3).unwrap();
            assert_eq!(n, data.len() as u64);
            assert_eq!(local.get("/cache").unwrap(), data);
            remote.close().unwrap();
        });
    }

    #[test]
    fn stage_out_roundtrips_data() {
        simulate(|rt| {
            let local = MemFs::new(rt.clone());
            let data: Vec<u8> = (0..123_457u32).map(|i| (i % 199) as u8).collect();
            local.put("/src", data.clone());
            let remote_fs = MemFs::new(rt.clone());
            let remote = File::open(&rt, &remote_fs, "/dst", OpenFlags::CreateRw).unwrap();
            let n = stage_out(&rt, &local, "/src", &remote, 32 * 1024, 2).unwrap();
            assert_eq!(n, data.len() as u64);
            remote.close().unwrap();
            assert_eq!(remote_fs.get("/dst").unwrap(), data);
        });
    }

    #[test]
    fn pipeline_overlaps_remote_and_local_work() {
        // Remote "WAN" at 10 MB/s, local disk at 10 MB/s: sequential
        // staging would take ~2 s/10 MB; the pipeline takes ~1 s.
        let (piped, serial) = simulate(|rt| {
            let remote_fs = slow_fs(&rt, 10.0);
            remote_fs.put("/big", vec![0u8; 10 << 20]);
            let local = slow_fs(&rt, 10.0);

            let remote = File::open(&rt, &remote_fs, "/big", OpenFlags::Read).unwrap();
            let t0 = rt.now();
            stage_in(&rt, &remote, &local, "/c1", 1 << 20, 4).unwrap();
            let piped = (rt.now() - t0).as_secs_f64();
            remote.close().unwrap();

            // Depth 1 = fully serial (read, then write, per block).
            let remote = File::open(&rt, &remote_fs, "/big", OpenFlags::Read).unwrap();
            let t0 = rt.now();
            stage_in(&rt, &remote, &local, "/c2", 1 << 20, 1).unwrap();
            let serial = (rt.now() - t0).as_secs_f64();
            remote.close().unwrap();
            (piped, serial)
        });
        assert!(
            piped < serial * 0.65,
            "pipeline {piped:.2}s vs serial {serial:.2}s"
        );
    }

    #[test]
    fn staging_empty_file_is_a_noop() {
        simulate(|rt| {
            let remote_fs = MemFs::new(rt.clone());
            remote_fs.put("/empty", Vec::new());
            let remote = File::open(&rt, &remote_fs, "/empty", OpenFlags::Read).unwrap();
            let local = MemFs::new(rt.clone());
            assert_eq!(stage_in(&rt, &remote, &local, "/c", 1024, 2).unwrap(), 0);
            assert_eq!(local.get("/c").unwrap(), Vec::<u8>::new());
            remote.close().unwrap();
        });
    }
}
