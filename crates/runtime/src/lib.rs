//! # semplar-runtime
//!
//! Execution substrate for the SEMPLAR remote I/O reproduction (Ali &
//! Lauria, *Improving the Performance of Remote I/O Using Asynchronous
//! Primitives*, HPDC 2006).
//!
//! The paper's experiments ran on three production clusters talking to the
//! SDSC SRB server over real wide-area networks. This crate provides the
//! piece that makes a faithful laptop-scale reproduction possible: a
//! **virtual-time runtime** ([`SimRuntime`]) in which every simulated thread
//! is a real OS thread, all blocking goes through the engine, and the clock
//! jumps forward only when every actor is blocked. The *identical* library
//! code also runs under the wall-clock backend ([`RealRuntime`]).
//!
//! ```
//! use semplar_runtime::{simulate, Dur};
//!
//! let end = simulate(|rt| {
//!     rt.sleep(Dur::from_secs(182)); // a transoceanic eternity, instantly
//!     rt.now()
//! });
//! assert_eq!(end.as_secs_f64(), 182.0);
//! ```

#![warn(missing_docs)]

mod real;
mod runtime;
mod sim;
pub mod sync;
pub mod task;
mod time;
pub mod trace;

pub use real::RealRuntime;
pub use runtime::{spawn, Event, EventApi, JoinHandle, JoinResult, Runtime, Wake};
pub use sim::{set_quiet_panics, simulate, Choice, ScheduleHook, SimRuntime, SimStats};
pub use task::{Gate, Task, TaskCtx, TaskExecutor, TaskHandle, TaskStats, TaskStep, Waker};
pub use time::{Dur, Time};
pub use trace::{Span, Trace};
