//! Golden-trace test: the request stream a `PerOpen`-style client emits is
//! byte-identical to the pre-refactor client. The fixture under
//! `tests/golden/peropen.trace` was captured *before* the session/transport
//! split; this test replays the same workload and compares the server-side
//! request trace (per-connection order, tags, wire sizes) line for line.
//!
//! Regenerate with `SEMPLAR_WRITE_GOLDEN=1 cargo test -p semplar-srb
//! --test golden_trace` — only do that intentionally: the point of the
//! fixture is to pin the wire behaviour across refactors.

use std::sync::Arc;

use semplar_netsim::{Bw, Network};
use semplar_runtime::{simulate, spawn, Dur, Runtime};
use semplar_srb::{ConnRoute, OpenFlags, Payload, SrbServer, SrbServerCfg};

fn workload(rt: &Arc<dyn Runtime>) -> Vec<String> {
    workload_with_list(rt, false)
}

fn workload_with_list(rt: &Arc<dyn Runtime>, with_list: bool) -> Vec<String> {
    let net = Network::new(rt.clone());
    let up = net.add_link("up", Bw::mbps(100.0), Dur::from_millis(10));
    let down = net.add_link("down", Bw::mbps(100.0), Dur::from_millis(10));
    let server = SrbServer::new(net, SrbServerCfg::default());
    server.mcat().add_user("alin", "pw");
    server.enable_request_trace();
    let route = ConnRoute {
        fwd: vec![up],
        rev: vec![down],
        send_cap: None,
        recv_cap: None,
        bus: None,
    };

    // Connections are created sequentially (deterministic ids), then the
    // two clients run concurrently: interleaving across connections is
    // irrelevant because the trace is grouped per connection.
    let c1 = server.connect(route.clone(), "alin", "pw").unwrap();
    let c2 = server.connect(route.clone(), "alin", "pw").unwrap();
    let c3 = with_list.then(|| server.connect(route, "alin", "pw").unwrap());
    c1.mk_coll("/g").unwrap();

    let h1 = spawn(rt, "client-a", move || {
        c1.create("/g/a").unwrap();
        let fd = c1.open("/g/a", OpenFlags::ReadWrite).unwrap();
        let block: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        c1.write(fd, 0, Payload::bytes(block.clone())).unwrap();
        c1.write(fd, 100_000, Payload::bytes(block)).unwrap();
        c1.read(fd, 0, 65_536).unwrap();
        c1.stat("/g/a").unwrap();
        c1.list("/g").unwrap();
        c1.checksum("/g/a").unwrap();
        c1.close_fd(fd).unwrap();
        c1.disconnect().unwrap();
    });
    let h2 = spawn(rt, "client-b", move || {
        let fd = c2.open("/g/b", OpenFlags::CreateRw).unwrap();
        c2.write(fd, 0, Payload::sized(300_000)).unwrap();
        c2.read(fd, 0, 4_096).unwrap();
        c2.stat("/g/b").unwrap();
        c2.close_fd(fd).unwrap();
        c2.unlink("/g/b").unwrap();
        c2.disconnect().unwrap();
    });
    let h3 = c3.map(|c3| {
        spawn(rt, "client-c", move || {
            let fd = c3.open("/g/c", OpenFlags::CreateRw).unwrap();
            let extents = [(0u64, 1000u64), (5000, 2000), (9000, 500)];
            let packed: Vec<u8> = (0..3500u32).map(|i| (i % 251) as u8).collect();
            c3.write_list(fd, &extents, Payload::bytes(packed), None)
                .unwrap();
            c3.read_list(fd, &extents, None).unwrap();
            c3.close_fd(fd).unwrap();
            c3.disconnect().unwrap();
        })
    });
    h1.join_unwrap();
    h2.join_unwrap();
    if let Some(h3) = h3 {
        h3.join_unwrap();
    }
    server.take_request_trace()
}

#[test]
fn peropen_request_stream_matches_pre_refactor_golden() {
    let trace = simulate(|rt| workload(&rt));
    let got = trace.join("\n") + "\n";
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/peropen.trace");
    if std::env::var("SEMPLAR_WRITE_GOLDEN").is_ok() {
        std::fs::write(path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(path).expect("golden fixture present");
    assert_eq!(
        got, want,
        "PerOpen request stream drifted from the pre-refactor golden trace"
    );
}

/// The list-I/O protocol extension is strictly additive: with a third
/// client exercising `readlist`/`writelist` on the same server, the
/// non-list clients' request streams stay byte-identical to the golden
/// fixture, and only the list client's connection carries the new ops.
#[test]
fn list_io_leaves_non_list_request_streams_untouched() {
    let trace = simulate(|rt| workload_with_list(&rt, true));
    let non_list: Vec<&str> = trace
        .iter()
        .map(String::as_str)
        .filter(|l| l.starts_with("conn=0 ") || l.starts_with("conn=1 "))
        .collect();
    let got = non_list.join("\n") + "\n";
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/peropen.trace");
    let want = std::fs::read_to_string(path).expect("golden fixture present");
    assert_eq!(
        got, want,
        "adding a list-I/O client changed the non-list request streams"
    );
    let list_lines: Vec<&String> = trace.iter().filter(|l| l.starts_with("conn=2 ")).collect();
    assert!(
        list_lines.iter().any(|l| l.contains("op=writelist")),
        "list client never framed a writelist: {list_lines:?}"
    );
    assert!(
        list_lines.iter().any(|l| l.contains("op=readlist")),
        "list client never framed a readlist: {list_lines:?}"
    );
}
