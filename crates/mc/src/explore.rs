//! Bounded systematic exploration.
//!
//! The explorer enumerates schedules by *stateless re-execution*: each
//! candidate schedule is a prefix of choice indices, executed from scratch
//! against a fresh virtual-time simulation with a [`ScriptHook`]. After an
//! execution, every choice point the run revealed **beyond** its scripted
//! prefix is expanded: for point `i` with `n` eligible events, the
//! prefixes `recorded[..i] + [alt]` for `alt in 1..n` are pushed onto the
//! worklist. Prefixes never end in 0, so every executed schedule is a
//! distinct interleaving by construction.
//!
//! Two bounds keep the tree finite: `depth` caps how many choice points
//! deep expansion reaches, and `max_executions` caps the total run count
//! (reported as a truncated frontier). Visited-state hashing prunes
//! re-expansion: if the runtime fingerprint at point `i` has already been
//! expanded with alternative `alt`, the subtree is assumed explored — the
//! fingerprint covers the clock, every actor's blocking state, and the
//! pending event multiset, which is exactly the state a schedule decision
//! can depend on.

use std::collections::{HashSet, VecDeque};

use crate::scenario::Scenario;
use crate::script::ScriptHook;
use crate::trace::McTrace;

/// Worklist discipline for the exploration frontier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Depth-first: dives to the depth bound quickly; smallest frontier.
    Dfs,
    /// Breadth-first: finds shallow counterexamples first.
    Bfs,
}

/// Bounds and knobs for one exploration.
#[derive(Clone, Debug)]
pub struct ExploreCfg {
    /// Worklist discipline.
    pub strategy: Strategy,
    /// Maximum choice-point depth expanded (points beyond it always take
    /// the default event).
    pub depth: usize,
    /// Hard cap on executions; hitting it truncates the frontier.
    pub max_executions: u64,
    /// Prune alternatives whose (state fingerprint, alternative) pair was
    /// already expanded from an earlier execution.
    pub prune_visited: bool,
    /// Stop at the first invariant violation instead of exploring on.
    pub stop_on_violation: bool,
    /// Partial-order reduction: skip alternatives that the scenario's
    /// [`Scenario::commutes`] oracle declares independent of the event the
    /// default schedule took at the same point (the swapped interleaving
    /// is a transposition of one already explored). Off by default — the
    /// committed `fig_mc` summaries predate the reduction and must not
    /// change.
    pub por: bool,
}

impl Default for ExploreCfg {
    fn default() -> ExploreCfg {
        ExploreCfg {
            strategy: Strategy::Dfs,
            depth: 8,
            max_executions: 2000,
            prune_visited: true,
            stop_on_violation: true,
            por: false,
        }
    }
}

/// What one bounded exploration did and found.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExploreReport {
    /// Schedules executed — each one a distinct interleaving.
    pub executions: u64,
    /// Executions that violated an invariant.
    pub violations: u64,
    /// The first violation's replayable trace, if any.
    pub counterexample: Option<McTrace>,
    /// Choice points encountered, summed over all executions.
    pub choice_points: u64,
    /// Largest eligible-event set seen at any single choice point.
    pub max_alternatives: usize,
    /// Most choice points seen in a single execution.
    pub max_points_per_run: usize,
    /// Distinct runtime state fingerprints observed at choice points.
    pub unique_states: u64,
    /// Alternatives skipped by visited-state pruning.
    pub pruned: u64,
    /// Alternatives skipped by partial-order reduction (commuting pairs).
    pub pruned_por: u64,
    /// Whether partial-order reduction was enabled for this exploration.
    pub por: bool,
    /// True when `max_executions` cut the frontier short.
    pub truncated: bool,
}

impl ExploreReport {
    /// The deterministic one-line summary diffed by CI. The
    /// `pruned_por` field only appears when the reduction was enabled,
    /// so summaries from POR-off runs — including every committed
    /// `fig_mc` output — render exactly as they did before POR existed.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "executions={} violations={} choice_points={} max_alternatives={} \
             max_points_per_run={} unique_states={} pruned={} truncated={}",
            self.executions,
            self.violations,
            self.choice_points,
            self.max_alternatives,
            self.max_points_per_run,
            self.unique_states,
            self.pruned,
            self.truncated,
        );
        if self.por {
            s.push_str(&format!(" pruned_por={}", self.pruned_por));
        }
        s
    }
}

/// Run a bounded exploration of `scenario` under `cfg`.
pub fn explore(scenario: &dyn Scenario, cfg: &ExploreCfg) -> ExploreReport {
    semplar_runtime::set_quiet_panics(true);
    let mut report = ExploreReport {
        por: cfg.por,
        ..ExploreReport::default()
    };
    let mut worklist: VecDeque<Vec<usize>> = VecDeque::new();
    worklist.push_back(Vec::new());
    let mut expanded: HashSet<(u64, usize)> = HashSet::new();
    let mut states: HashSet<u64> = HashSet::new();
    while let Some(prefix) = match cfg.strategy {
        Strategy::Dfs => worklist.pop_back(),
        Strategy::Bfs => worklist.pop_front(),
    } {
        if report.executions >= cfg.max_executions {
            report.truncated = true;
            break;
        }
        let hook = ScriptHook::follow(prefix.clone());
        let outcome = scenario.run(hook.clone());
        let records = hook.records();
        report.executions += 1;
        report.choice_points += records.len() as u64;
        report.max_points_per_run = report.max_points_per_run.max(records.len());
        for r in &records {
            report.max_alternatives = report.max_alternatives.max(r.alternatives);
            states.insert(r.fingerprint);
        }
        if let Err(violation) = outcome {
            report.violations += 1;
            if report.counterexample.is_none() {
                report.counterexample =
                    Some(McTrace::from_records(scenario.name(), &violation, &records));
            }
            if cfg.stop_on_violation {
                break;
            }
            // A violating run's suffix is not a schedule worth expanding.
            continue;
        }
        // Expand only points this run decided freshly (beyond its prefix).
        for i in prefix.len()..records.len().min(cfg.depth) {
            for alt in 1..records[i].alternatives {
                // Partial-order reduction: if the alternative commutes
                // with the event this run took here, the schedule that
                // fires it first is a transposition of one in the
                // explored subtree — same successor state, nothing new.
                if cfg.por
                    && scenario.commutes(
                        &records[i].eligible[records[i].chosen],
                        &records[i].eligible[alt],
                    )
                {
                    report.pruned_por += 1;
                    continue;
                }
                if cfg.prune_visited && !expanded.insert((records[i].fingerprint, alt)) {
                    report.pruned += 1;
                    continue;
                }
                let mut next: Vec<usize> = records[..i].iter().map(|r| r.chosen).collect();
                next.push(alt);
                worklist.push_back(next);
            }
        }
    }
    report.unique_states = states.len() as u64;
    semplar_runtime::set_quiet_panics(false);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use semplar_runtime::{spawn, Dur, SimRuntime};

    /// A toy scenario: three actors sleep to within one window of each
    /// other, then record their completion order. The "invariant" is
    /// configurable so tests can inject a violation.
    struct Toy {
        /// Completion orders treated as violations.
        forbidden: Vec<Vec<usize>>,
    }

    impl Scenario for Toy {
        fn name(&self) -> &str {
            "toy"
        }
        fn run(&self, hook: Arc<ScriptHook>) -> Result<(), String> {
            let sim = SimRuntime::new();
            sim.set_schedule_hook(hook, Dur::from_micros(10));
            let order = sim.run_root(|rt| {
                let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
                let mut hs = Vec::new();
                for i in 0..3usize {
                    let rt2 = rt.clone();
                    let o = order.clone();
                    hs.push(spawn(&rt, &format!("t{i}"), move || {
                        rt2.sleep(Dur::from_micros(5 + i as u64));
                        o.lock().push(i);
                    }));
                }
                for h in hs {
                    h.join_unwrap();
                }
                let o = order.lock().clone();
                o
            });
            if self.forbidden.contains(&order) {
                return Err(format!("forbidden order {order:?}"));
            }
            Ok(())
        }
    }

    /// Two independent groups of two actors: `a0,a1` race onto one order
    /// vector, `b0,b1` onto another. Cross-group pairs touch disjoint
    /// state and commute; same-group pairs race on a shared vec and must
    /// stay ordered. The "invariant" forbids configurable group-a orders.
    struct TwoGroups {
        forbidden_a: Vec<Vec<usize>>,
    }

    impl Scenario for TwoGroups {
        fn name(&self) -> &str {
            "two-groups"
        }
        fn run(&self, hook: Arc<ScriptHook>) -> Result<(), String> {
            let sim = SimRuntime::new();
            sim.set_schedule_hook(hook, Dur::from_micros(10));
            let order_a = sim.run_root(|rt| {
                let oa = Arc::new(parking_lot::Mutex::new(Vec::new()));
                let ob = Arc::new(parking_lot::Mutex::new(Vec::new()));
                let mut hs = Vec::new();
                for (group, o) in [("a", &oa), ("b", &ob)] {
                    for i in 0..2usize {
                        let rt2 = rt.clone();
                        let o = o.clone();
                        hs.push(spawn(&rt, &format!("{group}{i}"), move || {
                            rt2.sleep(Dur::from_micros(5 + i as u64));
                            o.lock().push(i);
                        }));
                    }
                }
                for h in hs {
                    h.join_unwrap();
                }
                let o = oa.lock().clone();
                o
            });
            if self.forbidden_a.contains(&order_a) {
                return Err(format!("forbidden group-a order {order_a:?}"));
            }
            Ok(())
        }
        fn commutes(&self, a: &str, b: &str) -> bool {
            // Labels are `a0/sleep`, `b1/sleep`, ...: cross-group events
            // write disjoint vectors, same-group events race.
            let group = |l: &str| l.as_bytes().first().copied();
            group(a) != group(b)
        }
    }

    #[test]
    fn explores_every_permutation_of_a_three_way_race() {
        let report = explore(
            &Toy { forbidden: vec![] },
            &ExploreCfg {
                prune_visited: false,
                ..ExploreCfg::default()
            },
        );
        // 3 simultaneous-window events: 3! = 6 interleavings, each hit
        // exactly once (prefixes never end in 0).
        assert_eq!(report.executions, 6);
        assert_eq!(report.violations, 0);
        assert!(report.counterexample.is_none());
        assert_eq!(report.max_alternatives, 3);
        assert!(!report.truncated);
    }

    #[test]
    fn por_prunes_commuting_interleavings_without_losing_coverage() {
        let mk = |por| ExploreCfg {
            por,
            prune_visited: false,
            stop_on_violation: false,
            ..ExploreCfg::default()
        };
        // Same-group races fully explored either way: the reversed
        // group-a order is reachable only by reordering a0/a1, which the
        // oracle refuses to prune — POR must still find the violation.
        let sc = TwoGroups {
            forbidden_a: vec![vec![1, 0]],
        };
        let full = explore(&sc, &mk(false));
        let por = explore(&sc, &mk(true));
        assert!(full.violations > 0);
        assert!(
            por.violations > 0,
            "POR pruned the only path to the violation"
        );
        assert!(por.pruned_por > 0, "oracle never fired");
        assert!(
            por.executions < full.executions,
            "POR executed {} schedules, full exploration {}",
            por.executions,
            full.executions
        );
        assert!(!full.por);
        assert!(por.por);
    }

    #[test]
    fn por_field_appears_in_summaries_only_when_enabled() {
        let off = explore(&Toy { forbidden: vec![] }, &ExploreCfg::default());
        assert!(!off.summary().contains("pruned_por"));
        let on = explore(
            &Toy { forbidden: vec![] },
            &ExploreCfg {
                por: true,
                ..ExploreCfg::default()
            },
        );
        // The toy's oracle is the default (nothing commutes): POR runs
        // the identical exploration, only the summary grows the field.
        assert!(on.summary().ends_with("pruned_por=0"));
        assert_eq!(off.executions, on.executions);
        assert_eq!(off.unique_states, on.unique_states);
    }

    #[test]
    fn exploration_is_deterministic() {
        let cfg = ExploreCfg::default();
        let a = explore(&Toy { forbidden: vec![] }, &cfg);
        let b = explore(&Toy { forbidden: vec![] }, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn finds_and_replays_a_violation() {
        // Forbid the reverse order — only systematic exploration reaches it.
        let toy = Toy {
            forbidden: vec![vec![2, 1, 0]],
        };
        let report = explore(&toy, &ExploreCfg::default());
        assert_eq!(report.violations, 1);
        let trace = report.counterexample.expect("counterexample");
        assert!(trace.violation.contains("[2, 1, 0]"));
        // The serialized trace replays to the same deterministic failure.
        let parsed = crate::trace::McTrace::parse(&trace.serialize()).expect("parse");
        let replay = toy.run(ScriptHook::follow(parsed.choices.clone()));
        assert_eq!(replay, Err("forbidden order [2, 1, 0]".to_string()));
        // And the default schedule passes.
        assert_eq!(toy.run(ScriptHook::default_schedule()), Ok(()));
    }

    #[test]
    fn bfs_visits_the_same_interleavings_as_dfs() {
        let mk = |strategy| ExploreCfg {
            strategy,
            prune_visited: false,
            ..ExploreCfg::default()
        };
        let d = explore(&Toy { forbidden: vec![] }, &mk(Strategy::Dfs));
        let b = explore(&Toy { forbidden: vec![] }, &mk(Strategy::Bfs));
        assert_eq!(d.executions, b.executions);
        assert_eq!(d.unique_states, b.unique_states);
    }

    #[test]
    fn execution_cap_truncates_the_frontier() {
        let report = explore(
            &Toy { forbidden: vec![] },
            &ExploreCfg {
                max_executions: 3,
                prune_visited: false,
                ..ExploreCfg::default()
            },
        );
        assert_eq!(report.executions, 3);
        assert!(report.truncated);
    }
}
