//! Pool-policy equivalence: multiplexing sessions over shared streams is a
//! *transport* decision and must never change *file* semantics. For any
//! interleaved striped write plan, a `Shared` pool produces exactly the
//! bytes a `PerOpen` (one-stream-per-open, paper-faithful) mount does.

use proptest::prelude::*;
use semplar_repro::clusters::{das2, Testbed};
use semplar_repro::runtime::{simulate, spawn};
use semplar_repro::semplar::{OpenFlags, Payload, SrbFs, StripeUnit, StripedFile};
use semplar_repro::srb::PoolPolicy;
use std::sync::Arc;

/// One writer's slice of the plan: which block indices it writes, in order.
#[derive(Clone, Debug)]
struct Plan {
    writers: usize,
    streams: usize,
    block: u64,
    /// `ops[w]` = block indices writer `w` writes (deterministic data).
    ops: Vec<Vec<u8>>,
}

fn plan_strategy() -> impl Strategy<Value = Plan> {
    (
        2usize..4,
        2usize..4,
        1u64..4,
        proptest::collection::vec(0u8..12, 2..6),
    )
        .prop_map(|(writers, streams, block_units, blocks)| Plan {
            writers,
            streams,
            block: block_units * 64 * 1024,
            ops: (0..writers)
                .map(|w| {
                    blocks
                        .iter()
                        .map(|b| b.wrapping_add(w as u8 * 3) % 12)
                        .collect()
                })
                .collect(),
        })
}

fn block_bytes(plan: &Plan, writer: usize, idx: u8) -> Vec<u8> {
    (0..plan.block)
        .map(|i| ((i as usize * 7 + writer * 31 + idx as usize * 13) % 251) as u8)
        .collect()
}

/// Run the interleaved striped write plan against `fs`, then read the whole
/// object back and checksum it server-side.
fn run_plan(plan: &Plan, policy: Option<PoolPolicy>) -> (Vec<u8>, u32, u64) {
    let plan = plan.clone();
    simulate(move |rt| {
        let tb = Testbed::new(rt.clone(), das2(), plan.writers);
        let mounts: Vec<Arc<SrbFs>> = (0..plan.writers)
            .map(|n| match policy {
                None => tb.srbfs(n),
                Some(p) => tb.srbfs_pooled(n, p),
            })
            .collect();
        let setup = mounts[0].admin_conn().unwrap();
        setup.mk_coll("/pool").unwrap();
        setup.disconnect().unwrap();
        // Concurrent writers, each striping its own ops over `streams`
        // connections to one shared object per writer (writers on separate
        // objects keeps the expected bytes well-defined under interleaving
        // while still interleaving many sessions on the wire).
        let handles: Vec<_> = (0..plan.writers)
            .map(|w| {
                let plan = plan.clone();
                let fs = mounts[w].clone();
                let rt = rt.clone();
                spawn(&rt.clone(), &format!("writer-{w}"), move || {
                    let f = StripedFile::open(
                        &rt,
                        &fs,
                        &format!("/pool/w{w}"),
                        OpenFlags::CreateRw,
                        plan.streams,
                        StripeUnit::Bytes(64 * 1024),
                    )
                    .unwrap();
                    let reqs: Vec<_> = plan.ops[w]
                        .iter()
                        .map(|&idx| {
                            f.iwrite_at(
                                idx as u64 * plan.block,
                                Payload::bytes(block_bytes(&plan, w, idx)),
                            )
                        })
                        .collect();
                    for r in reqs {
                        r.wait().unwrap();
                    }
                    f.close().unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join_unwrap();
        }
        // Observe through a fresh admin connection: contents of writer 0's
        // object, server-side checksums and sizes of all of them.
        let admin = mounts[0].admin_conn().unwrap();
        let mut checksum = 0u32;
        let mut total = 0u64;
        for w in 0..plan.writers {
            let path = format!("/pool/w{w}");
            checksum = checksum
                .wrapping_mul(31)
                .wrapping_add(admin.checksum(&path).unwrap());
            total += admin.stat(&path).unwrap().size;
        }
        let size0 = admin.stat("/pool/w0").unwrap().size;
        let fd = admin.open("/pool/w0", OpenFlags::Read).unwrap();
        let contents = admin
            .read(fd, 0, size0)
            .unwrap()
            .data()
            .map(|d| d.to_vec())
            .unwrap_or_default();
        admin.close_fd(fd).unwrap();
        admin.disconnect().unwrap();
        (contents, checksum, total)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `Shared` ≡ `PerOpen`: identical contents, checksums, and sizes for
    /// any interleaved striped write plan.
    #[test]
    fn shared_pool_is_semantically_identical_to_per_open(plan in plan_strategy()) {
        let per_open = run_plan(&plan, None);
        let shared = run_plan(
            &plan,
            Some(PoolPolicy::Shared { max_streams: 2, max_inflight: 4 }),
        );
        prop_assert_eq!(&per_open.0, &shared.0, "contents differ");
        prop_assert_eq!(per_open.1, shared.1, "checksums differ");
        prop_assert_eq!(per_open.2, shared.2, "sizes differ");
    }
}
