//! Serializable counterexample traces.
//!
//! When the explorer finds a schedule that violates an invariant it emits
//! an [`McTrace`]: the scenario name, the violation message, and the full
//! choice sequence. The trace round-trips through a plain text format
//! (one `key: value` header per line, then one line per choice point) so
//! it can be pasted into a bug report or committed as a failing-test
//! fixture and replayed bit-identically with [`ScriptHook::follow`].
//!
//! [`ScriptHook::follow`]: crate::ScriptHook::follow

use crate::script::ChoiceRecord;

/// A replayable schedule: everything needed to re-execute the exact
/// interleaving that produced a violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct McTrace {
    /// Name of the scenario that was running.
    pub scenario: String,
    /// The invariant violation message.
    pub violation: String,
    /// The full choice sequence, one index per choice point.
    pub choices: Vec<usize>,
    /// `alternatives @ label` per choice point, for human consumption.
    pub points: Vec<(usize, String)>,
}

impl McTrace {
    /// Build a trace from an execution's records and its violation.
    pub fn from_records(scenario: &str, violation: &str, records: &[ChoiceRecord]) -> McTrace {
        McTrace {
            scenario: scenario.to_string(),
            violation: violation.replace('\n', " / "),
            choices: records.iter().map(|r| r.chosen).collect(),
            points: records
                .iter()
                .map(|r| (r.alternatives, r.label.replace('\n', " ")))
                .collect(),
        }
    }

    /// Render the trace in its text format.
    pub fn serialize(&self) -> String {
        let mut out = String::from("mc-trace v1\n");
        out.push_str(&format!("scenario: {}\n", self.scenario));
        out.push_str(&format!("violation: {}\n", self.violation));
        let choices: Vec<String> = self.choices.iter().map(|c| c.to_string()).collect();
        out.push_str(&format!("choices: {}\n", choices.join(",")));
        for (i, (n, label)) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "  point {i}: chose {}/{n} ({label})\n",
                self.choices.get(i).copied().unwrap_or(0)
            ));
        }
        out
    }

    /// Parse a trace rendered by [`McTrace::serialize`]. The per-point
    /// detail lines are optional — only the headers drive a replay.
    pub fn parse(text: &str) -> Option<McTrace> {
        let mut lines = text.lines();
        if lines.next()?.trim() != "mc-trace v1" {
            return None;
        }
        let mut scenario = None;
        let mut violation = None;
        let mut choices = None;
        let mut points = Vec::new();
        for line in lines {
            let line = line.trim();
            if let Some(v) = line.strip_prefix("scenario: ") {
                scenario = Some(v.to_string());
            } else if let Some(v) = line.strip_prefix("violation: ") {
                violation = Some(v.to_string());
            } else if let Some(v) = line.strip_prefix("choices: ") {
                let parsed: Result<Vec<usize>, _> = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::parse)
                    .collect();
                choices = Some(parsed.ok()?);
            } else if let Some(rest) = line.strip_prefix("point ") {
                // "N: chose C/A (label)"
                let (_, rest) = rest.split_once(": chose ")?;
                let (frac, label) = rest.split_once(" (")?;
                let (_, n) = frac.split_once('/')?;
                points.push((n.parse().ok()?, label.strip_suffix(')')?.to_string()));
            }
        }
        Some(McTrace {
            scenario: scenario?,
            violation: violation?,
            choices: choices?,
            points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_round_trips() {
        let t = McTrace {
            scenario: "federation-crash".into(),
            violation: "checksum mismatch on /fed/data0".into(),
            choices: vec![0, 2, 1],
            points: vec![
                (2, "fault/server-crash".into()),
                (3, "replicator/ship-block".into()),
                (2, "reconcile/resume-block".into()),
            ],
        };
        let text = t.serialize();
        assert_eq!(McTrace::parse(&text), Some(t));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(McTrace::parse("not a trace"), None);
        assert_eq!(McTrace::parse("mc-trace v1\nchoices: 1,2"), None);
    }
}
