//! Availability under injected faults: the ROMIO `perf` shared-file write
//! on DAS-2, fault-free vs under a seeded fault plan (two WAN link flaps,
//! a vault stall, a server crash + restart, a connection reset).
//!
//! The run is entirely in virtual time and every fault is drawn from the
//! seeded plan, so the output is bit-identical across invocations — CI
//! diffs it against `results/fig_availability.txt`.

use semplar_bench::table::mbps;
use semplar_bench::{fig_availability, Table};
use semplar_clusters::das2;
use semplar_runtime::{Dur, Time};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // The crash is timed to land after the ranks have re-established the
    // connections the reset severed (notice latency scales with the
    // payload still in flight, hence with bytes per process).
    let (procs, bytes, crash_at) = if quick {
        (2, 4 << 20, Dur::from_secs(8))
    } else {
        (4, 8 << 20, Dur::from_secs(16))
    };
    let streams = 2;
    let seed = 7u64;

    let rep = fig_availability(
        das2(),
        procs,
        bytes,
        streams,
        seed,
        Dur::from_secs(2),
        crash_at,
    );

    let mut t = Table::new(
        &format!(
            "Availability (das2): perf write, {procs} procs x {} MiB, {streams} streams, seed {seed}",
            bytes >> 20
        ),
        &["metric", "value"],
    );
    t.row(vec!["write fault-free".into(), mbps(rep.baseline_mbps)]);
    t.row(vec!["write under faults".into(), mbps(rep.faulted_mbps)]);
    t.row(vec![
        "goodput".into(),
        format!("{:.1} %", rep.goodput_fraction() * 100.0),
    ]);
    t.row(vec![
        "disconnects seen".into(),
        rep.recovery.disconnects.to_string(),
    ]);
    t.row(vec![
        "reconnects".into(),
        rep.recovery.reconnects.to_string(),
    ]);
    t.row(vec![
        "ops recovered".into(),
        rep.recovery.recovered_ops.to_string(),
    ]);
    t.row(vec![
        "total recovery time".into(),
        format!("{:.3} s", rep.recovery.recovery_time.as_secs_f64()),
    ]);
    t.row(vec![
        "mean recovery latency".into(),
        format!("{:.3} s", rep.mean_recovery_secs()),
    ]);
    t.row(vec![
        "connections severed".into(),
        rep.faults.conns_severed.to_string(),
    ]);
    t.print();

    println!("fault ledger (virtual time):");
    for (at, what) in &rep.faults.ledger {
        println!("  [{:9.3} s] {what}", (*at - Time::ZERO).as_secs_f64());
    }
}
