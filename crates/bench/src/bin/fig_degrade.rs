//! Degraded-link striping: one striped write on a multi-homed client with
//! a seeded single-link degrade (stream 0's uplink throttled 4×), with
//! round-robin vs goodput-adaptive block placement.
//!
//! Round-robin keeps feeding the throttled path its full share of blocks,
//! so the slow stream gates the whole write; the adaptive scheduler weighs
//! placement by each stream's measured goodput and rebalances mid-write.
//! Entirely in virtual time and seeded, so the output is bit-identical
//! across invocations — CI diffs `--quick` against
//! `results/fig_degrade_quick.txt`.

use semplar_bench::table::mbps;
use semplar_bench::{fig_degrade, Table};
use semplar_runtime::{Dur, Time};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bytes: u64 = if quick { 16 << 20 } else { 64 << 20 };
    let streams = 2;
    let block = 1u64 << 20;
    let factor = 0.25;
    let seed = 11u64;
    let degrade_at = Dur::from_millis(200);

    let rep = fig_degrade(streams, bytes, block, factor, seed, degrade_at);

    let mut t = Table::new(
        &format!(
            "Degraded link (2x50 Mb/s paths): {} MiB striped write, {streams} streams, \
             1 MiB blocks, uplink 0 at {}x from t={:.1}s, seed {seed}",
            bytes >> 20,
            factor,
            rep.degrade_at_secs
        ),
        &["metric", "value"],
    );
    t.row(vec!["round-robin write".into(), mbps(rep.rr_mbps)]);
    t.row(vec![
        "round-robin time".into(),
        format!("{:.3} s", rep.rr_secs),
    ]);
    t.row(vec!["adaptive write".into(), mbps(rep.adaptive_mbps)]);
    t.row(vec![
        "adaptive time".into(),
        format!("{:.3} s", rep.adaptive_secs),
    ]);
    t.row(vec![
        "adaptive speedup".into(),
        format!("{:.2}x", rep.speedup()),
    ]);
    for (i, (blocks, by)) in rep
        .stats
        .blocks
        .iter()
        .zip(rep.stats.bytes.iter())
        .enumerate()
    {
        t.row(vec![
            format!("stream {i} carried"),
            format!("{blocks} blocks / {} MiB", by >> 20),
        ]);
    }
    t.row(vec![
        "blocks migrated off home".into(),
        rep.stats.migrated.to_string(),
    ]);
    t.row(vec![
        "blocks requeued on failure".into(),
        rep.stats.requeued.to_string(),
    ]);
    t.print();

    println!("fault ledger (virtual time):");
    for (at, what) in &rep.faults.ledger {
        println!("  [{:9.3} s] {what}", (*at - Time::ZERO).as_secs_f64());
    }
}
