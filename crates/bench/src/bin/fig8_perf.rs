//! Figure 8: ROMIO `perf` aggregate I/O bandwidth with one vs two
//! concurrent TCP streams per node, on DAS-2 (up to 30 processors) and
//! TG-NCSA (up to 10).
//!
//! Paper reference points (averages over the sweep): two streams improve
//! write bandwidth by 43 % and read bandwidth by 96 % on DAS-2; by 24 % and
//! 75 % on TG-NCSA. Each node reads/writes a 32 MB array.

use semplar_bench::table::{mbps, pct};
use semplar_bench::{avg_bw_gain, fig8_perf_with_stats, Table};
use semplar_clusters::{das2, tg_ncsa};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bytes: u64 = if quick { 8 << 20 } else { 32 << 20 };
    let das2_procs: &[usize] = if quick {
        &[2, 8]
    } else {
        &[1, 2, 4, 8, 12, 16, 20, 25, 30]
    };
    let tg_procs: &[usize] = if quick {
        &[2, 6]
    } else {
        &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
    };

    for (spec, procs, paper) in [
        (das2(), das2_procs, "paper: write +43%, read +96%"),
        (tg_ncsa(), tg_procs, "paper: write +24%, read +75%"),
    ] {
        let name = spec.name;
        let (rows, net_stats, sim_stats, cache) = fig8_perf_with_stats(spec, procs, bytes);
        let mut t = Table::new(
            &format!("Fig. 8 ({name}): perf aggregate I/O bandwidth (Mb/s)"),
            &[
                "procs",
                "write 1-stream",
                "write 2-stream",
                "read 1-stream",
                "read 2-stream",
            ],
        );
        for r in &rows {
            t.row(vec![
                r.procs.to_string(),
                mbps(r.write_one),
                mbps(r.write_two),
                mbps(r.read_one),
                mbps(r.read_two),
            ]);
        }
        t.print();
        let wgain = avg_bw_gain(rows.iter().map(|r| (r.write_one, r.write_two)));
        let rgain = avg_bw_gain(rows.iter().map(|r| (r.read_one, r.read_two)));
        println!(
            "{name}: average two-stream gain — write {}, read {}   ({paper})",
            pct(wgain),
            pct(rgain)
        );
        println!(
            "{name}: netsim allocator — {} recomputes, {:.1} flows touched each, \
             {} settles skipped, {} signals, {:.1} ms total",
            net_stats.recomputes,
            net_stats.flows_touched as f64 / net_stats.recomputes.max(1) as f64,
            net_stats.settles_skipped,
            net_stats.signals,
            net_stats.alloc_nanos as f64 / 1e6,
        );
        println!(
            "{name}: scheduler — {} clock advances, {} timers, {} peak actors, \
             {} choice points / {} alternatives (exploration hook inactive)",
            sim_stats.clock_advances,
            sim_stats.timers_armed,
            sim_stats.max_actors,
            sim_stats.choice_points,
            sim_stats.choice_alternatives,
        );
        println!(
            "{name}: engine — {} thread actors spawned (peak {}), \
             {} event-driven tasks spawned (peak {})",
            sim_stats.actors_spawned,
            sim_stats.peak_live_actors,
            sim_stats.tasks_spawned,
            sim_stats.peak_live_tasks,
        );
        println!(
            "{name}: server block cache — {} hits, {} misses, {} evictions, \
             {} bytes saved (cache disabled in this figure; see fig_cache)",
            cache.hits, cache.misses, cache.evictions, cache.bytes_saved,
        );
    }
}
