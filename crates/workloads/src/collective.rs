//! Remote collective I/O — the paper's second stated piece of future work
//! (§9: "we would also like to study the effect of asynchronous primitives
//! on remote, collective I/O").
//!
//! The workload is the classic two-phase-I/O motivator: a matrix stored
//! row-major in a shared remote file, distributed by *columns* across
//! ranks, so each rank's data is many small strided chunks. Three
//! strategies:
//!
//! * [`CollectiveMode::Naive`] — every rank writes its own cells with
//!   independent small writes. Over a WAN each small write pays a full
//!   RTT: this is catastrophically latency-bound, which is exactly why
//!   remote collective I/O is interesting.
//! * [`CollectiveMode::TwoPhaseSync`] — ROMIO-style two-phase I/O:
//!   ranks exchange cells over the fast interconnect so that a few
//!   *aggregator* ranks each write one large contiguous region per row
//!   band, synchronously.
//! * [`CollectiveMode::TwoPhaseAsync`] — the paper's question answered:
//!   aggregators issue each band's write asynchronously, so the *exchange
//!   phase of band b+1 overlaps the remote write of band b* — combining
//!   collective aggregation with SEMPLAR's asynchronous primitives.

use std::sync::Arc;

use semplar::{File, OpenFlags, Payload, Request};
use semplar_clusters::Testbed;
use semplar_mpi::run_world;

const TAG_CELLS: u32 = 31;

/// Write strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveMode {
    /// Independent strided writes from every rank.
    Naive,
    /// Independent writes, but each rank batches its whole column into one
    /// list-I/O request per step: the same access pattern as
    /// [`CollectiveMode::Naive`] at one RTT per step instead of one per
    /// cell, with no inter-rank exchange at all.
    NaiveList,
    /// Two-phase I/O with synchronous aggregator writes.
    TwoPhaseSync,
    /// Two-phase I/O with asynchronous aggregator writes overlapping the
    /// next band's exchange.
    TwoPhaseAsync,
}

/// Workload parameters: an `rows × procs` cell matrix, column-distributed.
#[derive(Clone, Copy, Debug)]
pub struct CollectiveParams {
    /// Matrix rows (= cells per rank).
    pub rows: usize,
    /// Bytes per cell.
    pub cell_bytes: u64,
    /// Aggregator ranks (two-phase modes; clamped to world size).
    pub aggregators: usize,
    /// Row bands processed per exchange/write cycle (two-phase modes).
    pub bands: usize,
    /// Timesteps: the collective runs once per step, with a compute phase
    /// in between (the usual simulation-loop shape). With
    /// [`CollectiveMode::TwoPhaseAsync`] the last band's write of step *s*
    /// overlaps the compute phase of step *s+1*.
    pub steps: usize,
    /// Reference-CPU seconds of computation per rank per step.
    pub compute_per_step: f64,
    /// Strategy.
    pub mode: CollectiveMode,
}

impl Default for CollectiveParams {
    fn default() -> Self {
        CollectiveParams {
            rows: 64,
            cell_bytes: 64 * 1024,
            aggregators: 2,
            bands: 4,
            steps: 1,
            compute_per_step: 0.0,
            mode: CollectiveMode::TwoPhaseAsync,
        }
    }
}

/// Timing from one collective write.
#[derive(Clone, Copy, Debug)]
pub struct CollectiveReport {
    /// Processes.
    pub procs: usize,
    /// Strategy used.
    pub mode: CollectiveMode,
    /// Execution time of the collective, seconds.
    pub exec_secs: f64,
    /// Remote write operations issued (the latency-bound quantity).
    pub remote_ops: u64,
}

/// Which rows aggregator `a` of `n_agg` owns within `rows`.
fn agg_rows(rows: usize, n_agg: usize, a: usize) -> (usize, usize) {
    let base = rows / n_agg;
    let extra = rows % n_agg;
    let mine = base + usize::from(a < extra);
    let start = a * base + a.min(extra);
    (start, mine)
}

/// Run the collective write on `n` ranks of `tb`. The shared file holds a
/// `params.rows × n` matrix of `cell_bytes` cells, row-major; rank `r` owns
/// column `r`.
pub fn run_collective(tb: &Arc<Testbed>, n: usize, params: CollectiveParams) -> CollectiveReport {
    assert!(n <= tb.nodes());
    let tb2 = tb.clone();
    let results = run_world(tb.topo.clone(), n, move |r| {
        let rt = r.runtime().clone();
        let p = params;
        let n_agg = p.aggregators.clamp(1, r.size);
        let row_bytes = p.cell_bytes * r.size as u64;
        let independent = matches!(p.mode, CollectiveMode::Naive | CollectiveMode::NaiveList);
        let is_agg = r.rank < n_agg && !independent;
        let needs_file = independent || is_agg;
        let fs = tb2.srbfs(r.rank);
        let file = if needs_file {
            Some(File::open(&rt, &fs, "/collective", OpenFlags::CreateRw).expect("open"))
        } else {
            None
        };
        let mut remote_ops = 0u64;

        r.barrier();
        let t0 = rt.now();
        let mut pending: Option<Request> = None;
        for step in 0..p.steps.max(1) {
            if p.compute_per_step > 0.0 {
                // The application's own computation; in the async mode the
                // previous step's in-flight band write overlaps this.
                tb2.compute(
                    r.rank,
                    semplar_runtime::Dur::from_secs_f64(p.compute_per_step),
                );
            }
            match p.mode {
                CollectiveMode::Naive => {
                    let f = file.as_ref().expect("naive writer has a file");
                    // Column r: one small write per row, each a full RTT away.
                    for row in 0..p.rows {
                        let off = row as u64 * row_bytes + r.rank as u64 * p.cell_bytes;
                        f.write_at(off, &Payload::sized(p.cell_bytes))
                            .expect("cell");
                        remote_ops += 1;
                    }
                }
                CollectiveMode::NaiveList => {
                    let f = file.as_ref().expect("naive-list writer has a file");
                    // Column r again, but the whole column rides one
                    // list-I/O exchange: the extent table frames the strided
                    // cells and the payload packs them back-to-back.
                    let extents: Vec<(u64, u64)> = (0..p.rows)
                        .map(|row| {
                            (
                                row as u64 * row_bytes + r.rank as u64 * p.cell_bytes,
                                p.cell_bytes,
                            )
                        })
                        .collect();
                    let packed = Payload::sized(p.rows as u64 * p.cell_bytes);
                    f.write_list(&extents, &packed).expect("column");
                    remote_ops += 1;
                }
                CollectiveMode::TwoPhaseSync | CollectiveMode::TwoPhaseAsync => {
                    let asynchronous = p.mode == CollectiveMode::TwoPhaseAsync;
                    for band in 0..p.bands {
                        let band_rows0 = band * p.rows / p.bands;
                        let band_rows1 = (band + 1) * p.rows / p.bands;
                        // Phase 1: every rank ships its cells for this band
                        // to each aggregator over the interconnect.
                        for a in 0..n_agg {
                            let (a0, am) = agg_rows(band_rows1 - band_rows0, n_agg, a);
                            let bytes = am as u64 * p.cell_bytes;
                            if a != r.rank {
                                r.send(a, TAG_CELLS, (step, band, a0), bytes);
                            }
                        }
                        if is_agg {
                            // Collect the other ranks' cells.
                            for _ in 0..r.size - 1 {
                                let _ = r.recv::<(usize, usize, usize)>(None, TAG_CELLS);
                            }
                            // Phase 2: one large contiguous write per slice.
                            let (rel0, rows_mine) =
                                agg_rows(band_rows1 - band_rows0, n_agg, r.rank);
                            let row0 = band_rows0 + rel0;
                            let off = row0 as u64 * row_bytes;
                            let len = rows_mine as u64 * row_bytes;
                            if len > 0 {
                                let f = file.as_ref().expect("aggregator has a file");
                                if asynchronous {
                                    // Wait for the previous band's write only
                                    // now — it overlapped the exchange above
                                    // and, across steps, the compute phase.
                                    if let Some(prev) = pending.take() {
                                        prev.wait().expect("band write");
                                    }
                                    pending = Some(f.iwrite_at(off, Payload::sized(len)));
                                } else {
                                    f.write_at(off, &Payload::sized(len)).expect("band write");
                                }
                                remote_ops += 1;
                            }
                        }
                    }
                }
            }
        }
        if let Some(prev) = pending.take() {
            prev.wait().expect("final band write");
        }
        r.barrier();
        let exec = (rt.now() - t0).as_secs_f64();
        if let Some(f) = file {
            f.close().expect("close");
        }
        (exec, remote_ops)
    });
    CollectiveReport {
        procs: n,
        mode: params.mode,
        exec_secs: results.iter().map(|r| r.0).fold(0.0, f64::max),
        remote_ops: results.iter().map(|r| r.1).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semplar_clusters::{das2, Testbed};
    use semplar_runtime::simulate;

    fn params(mode: CollectiveMode) -> CollectiveParams {
        // Small cells: the naive strategy is RTT-bound (the regime remote
        // collective I/O exists for).
        CollectiveParams {
            rows: 64,
            cell_bytes: 8 * 1024,
            aggregators: 2,
            bands: 4,
            steps: 1,
            compute_per_step: 0.0,
            mode,
        }
    }

    #[test]
    fn agg_rows_partition_is_exact() {
        for rows in [1usize, 7, 32, 64] {
            for n_agg in 1..=5 {
                let mut next = 0;
                let mut total = 0;
                for a in 0..n_agg {
                    let (start, mine) = agg_rows(rows, n_agg, a);
                    assert_eq!(start, next);
                    next += mine;
                    total += mine;
                }
                assert_eq!(total, rows, "rows={rows} aggs={n_agg}");
            }
        }
    }

    #[test]
    fn two_phase_crushes_naive_on_the_wan() {
        let (naive, two) = simulate(|rt| {
            let tb = Testbed::new(rt, das2(), 4);
            (
                run_collective(&tb, 4, params(CollectiveMode::Naive)),
                run_collective(&tb, 4, params(CollectiveMode::TwoPhaseSync)),
            )
        });
        // Naive: 4 ranks × 64 cells = 256 RTT-bound small writes.
        assert_eq!(naive.remote_ops, 256);
        assert_eq!(two.remote_ops, 8); // 2 aggregators × 4 bands
        assert!(
            two.exec_secs < naive.exec_secs * 0.6,
            "two-phase {:.1}s should crush naive {:.1}s",
            two.exec_secs,
            naive.exec_secs
        );
    }

    #[test]
    fn list_io_collapses_naive_to_one_op_per_rank() {
        let (naive, list) = simulate(|rt| {
            let tb = Testbed::new(rt, das2(), 4);
            (
                run_collective(&tb, 4, params(CollectiveMode::Naive)),
                run_collective(&tb, 4, params(CollectiveMode::NaiveList)),
            )
        });
        // Same strided access pattern, but each rank's 64 cells ride one
        // list exchange: 4 ops total instead of 256.
        assert_eq!(naive.remote_ops, 256);
        assert_eq!(list.remote_ops, 4);
        assert!(
            list.exec_secs < naive.exec_secs * 0.25,
            "list-I/O {:.1}s should collapse naive {:.1}s",
            list.exec_secs,
            naive.exec_secs
        );
    }

    #[test]
    fn async_aggregation_beats_sync_in_a_timestep_loop() {
        // A simulation loop: compute, collective checkpoint, repeat. The
        // asynchronous aggregator write overlaps the next compute phase.
        let stepped = |mode| CollectiveParams {
            steps: 4,
            compute_per_step: 0.7, // ≈ one band's WAN write time
            ..params(mode)
        };
        let (sync2, async2) = simulate(move |rt| {
            let tb = Testbed::new(rt, das2(), 4);
            (
                run_collective(&tb, 4, stepped(CollectiveMode::TwoPhaseSync)),
                run_collective(&tb, 4, stepped(CollectiveMode::TwoPhaseAsync)),
            )
        });
        assert!(
            async2.exec_secs < sync2.exec_secs * 0.95,
            "async two-phase {:.2}s should beat sync {:.2}s",
            async2.exec_secs,
            sync2.exec_secs
        );
    }

    #[test]
    fn file_contents_cover_the_whole_matrix() {
        simulate(|rt| {
            let tb = Testbed::new(rt.clone(), das2(), 3);
            let p = CollectiveParams {
                rows: 6,
                cell_bytes: 100,
                aggregators: 2,
                bands: 2,
                steps: 1,
                compute_per_step: 0.0,
                mode: CollectiveMode::TwoPhaseSync,
            };
            run_collective(&tb, 3, p);
            // The shared object must span the full matrix.
            let conn = tb.server.connect(tb.route(0), "semplar", "hpdc06").unwrap();
            let st = conn.stat("/collective").unwrap();
            assert_eq!(st.size, 6 * 3 * 100);
            conn.disconnect().unwrap();
        });
    }
}
