//! Offline shim for the `rand` API subset used by this workspace.
//!
//! Provides a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via
//! splitmix64) plus the [`Rng`]/[`SeedableRng`] trait surface the workloads
//! and tests rely on: `gen_range` over half-open and inclusive integer
//! ranges, `gen::<f64>()`, and `gen_bool`. Streams are stable across runs
//! for a given seed, which is all the EST generator and the stress tests
//! require (the exact stream need not match upstream `rand`).

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling surface used by this workspace.
pub trait Rng {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Sample a value of `T` from its standard distribution
    /// (`f64` in `[0,1)`, full-range integers, fair `bool`).
    #[allow(clippy::wrong_self_convention)]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Types samplable from their "standard" distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: Rng>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, n)` by widening multiply (Lemire); `n > 0`.
fn below<R: Rng>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "gen_range: empty range");
                let span = (b as i128 - a as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (a as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(5u64..=6);
            assert!((5..=6).contains(&y));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_f64_and_bool() {
        let mut r = StdRng::seed_from_u64(9);
        let mut trues = 0;
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            if r.gen_bool(0.5) {
                trues += 1;
            }
        }
        assert!((3000..7000).contains(&trues), "{trues}");
    }
}
