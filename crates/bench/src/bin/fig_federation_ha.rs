//! Federation HA: quorum promotion vs failover-only recovery.
//!
//! The same federated round-robin write runs three times against the same
//! seeded mid-write crash of one shard's primary: fault-free, with PR-5
//! failover-only recovery (the replica serves detoured ops until the
//! primary restarts), and under membership governance. In the promotion
//! arm the crashed primary's lease expires, the shard's replica is
//! elevated to primary by quorum vote at a bumped epoch, and the restarted
//! old primary comes back hard-fenced, is certified in as the replica, and
//! receives the divergent suffix through the reverse replication stream.
//! The replica also fronts the PR-9 block cache, so mid-outage reads are
//! warm. Promotion must retain strictly more goodput than failover-only —
//! once the replica *is* the primary, writes stop detouring — with zero
//! acked-byte loss on any seat. Entirely in virtual time and seeded, so
//! the output is bit-identical across invocations — CI diffs `--quick`
//! against `results/fig_federation_ha_quick.txt`.

use semplar_bench::table::mbps;
use semplar_bench::{fig_federation_ha, Table};
use semplar_runtime::{Dur, Time};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let shards = 2usize;
    let (files, bytes_per_file, chunk, crash_at, down_for) = if quick {
        (2usize, 6u64 << 20, 1u64 << 20, 800u64, 1_500u64)
    } else {
        (3usize, 16u64 << 20, 2u64 << 20, 2_500u64, 3_000u64)
    };
    let (heartbeat, lease) = (50u64, 200u64);
    let seed = 23u64;
    let rep = fig_federation_ha(
        shards,
        files,
        bytes_per_file,
        chunk,
        seed,
        Dur::from_millis(crash_at),
        Dur::from_millis(down_for),
        Dur::from_millis(heartbeat),
        Dur::from_millis(lease),
    );

    let mut t = Table::new(
        &format!(
            "Federation HA ({shards} shards x primary+replica, 50 Mb/s client paths): \
             {files} x {} MiB files, owner of file 0 crashed at t={:.1}s for {:.1}s, \
             heartbeat {}ms / lease {}ms, seed {seed}",
            bytes_per_file >> 20,
            rep.crash_at_secs,
            rep.down_for_secs,
            rep.heartbeat_ms,
            rep.lease_ms
        ),
        &["metric", "value"],
    );
    t.row(vec!["fault-free write".into(), mbps(rep.fault_free_mbps)]);
    t.row(vec![
        "fault-free time".into(),
        format!("{:.3} s", rep.fault_free_secs),
    ]);
    t.row(vec!["failover-only write".into(), mbps(rep.failover_mbps)]);
    t.row(vec![
        "failover-only time".into(),
        format!("{:.3} s", rep.failover_secs),
    ]);
    t.row(vec!["promotion write".into(), mbps(rep.promo_mbps)]);
    t.row(vec![
        "promotion time".into(),
        format!("{:.3} s", rep.promo_secs),
    ]);
    t.row(vec![
        "goodput retained (failover-only)".into(),
        format!(
            "{:.1} %",
            100.0 * rep.failover_mbps / rep.fault_free_mbps.max(1e-9)
        ),
    ]);
    t.row(vec![
        "goodput retained (promotion)".into(),
        format!(
            "{:.1} %",
            100.0 * rep.promo_mbps / rep.fault_free_mbps.max(1e-9)
        ),
    ]);
    t.row(vec![
        "detoured ops (failover / promotion)".into(),
        format!("{} / {}", rep.failovers[0], rep.failovers[1]),
    ]);
    t.row(vec![
        "divergence high-water (failover / promotion)".into(),
        format!(
            "{} / {} extents",
            rep.div_high_water[0], rep.div_high_water[1]
        ),
    ]);
    for tr in &rep.ledger.entries {
        t.row(vec![
            format!(
                "[{:.3} s] shard {} {:?}",
                (tr.at - Time::ZERO).as_secs_f64(),
                tr.shard,
                tr.kind
            ),
            format!(
                "epoch {} seat {} ({} echoes, {} readies)",
                tr.epoch, tr.primary, tr.echoes, tr.readies
            ),
        ]);
    }
    t.row(vec![
        "final epochs".into(),
        rep.epochs
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join(" / "),
    ]);
    t.row(vec![
        "final primary seats".into(),
        rep.primaries
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(" / "),
    ]);
    t.row(vec![
        "fenced writes rejected (old primary)".into(),
        rep.fenced_rejects.to_string(),
    ]);
    t.row(vec![
        "replica block cache (crashed shard)".into(),
        format!(
            "{} hits / {} misses",
            rep.replica_cache.hits, rep.replica_cache.misses
        ),
    ]);
    for (s, (fwd, rev)) in rep.repl.iter().enumerate() {
        t.row(vec![
            format!("shard {s} forward repl"),
            format!(
                "{} extents / {} blocks / {} MiB ({} re-ships)",
                fwd.enqueued,
                fwd.shipped_blocks,
                fwd.shipped_bytes >> 20,
                fwd.reships
            ),
        ]);
        t.row(vec![
            format!("shard {s} reverse repl"),
            format!(
                "{} extents / {} blocks / {} MiB ({} re-ships)",
                rev.enqueued,
                rev.shipped_blocks,
                rev.shipped_bytes >> 20,
                rev.reships
            ),
        ]);
    }
    t.row(vec![
        "mid-outage reads (failover / promotion)".into(),
        format!(
            "{} / {}",
            if rep.outage_read_ok[0] {
                "bytes intact"
            } else {
                "MISMATCH"
            },
            if rep.outage_read_ok[1] {
                "bytes intact"
            } else {
                "MISMATCH"
            },
        ),
    ]);
    t.row(vec![
        "checksums (all arms vs fault-free)".into(),
        if rep.converged() {
            "bit-identical on every seat".into()
        } else {
            "DIVERGED".to_string()
        },
    ]);
    for (i, sum) in rep.promo_sums.0.iter().enumerate() {
        t.row(vec![format!("file {i} adler32"), format!("{sum:08x}")]);
    }
    t.print();

    println!("fault ledger (virtual time):");
    for (at, what) in &rep.faults.ledger {
        println!("  [{:9.3} s] {what}", (*at - Time::ZERO).as_secs_f64());
    }
    assert!(rep.converged(), "acked bytes lost: checksums diverged");
    assert!(
        rep.ledger.promotions().count() >= 1,
        "lease expiry never promoted the replica"
    );
    assert!(
        rep.promo_mbps > rep.failover_mbps,
        "promotion arm did not beat failover-only: {:.3} vs {:.3} Mb/s",
        rep.promo_mbps,
        rep.failover_mbps
    );
}
