//! A fast, byte-oriented LZ77 codec in the LZO/LZF family.
//!
//! The paper compresses 1 MB blocks of nucleotide text with miniLZO (§7.3),
//! chosen because it is "a relatively fast compression algorithm" whose
//! compression time is ~two orders of magnitude below the WAN transmission
//! time of the compressed data. This module implements the same class of
//! codec from scratch:
//!
//! * greedy LZ77 with a 3-byte hash-chain-free match finder,
//! * 8 KiB offset window, match lengths 3..=264,
//! * byte-aligned output (no entropy coding), so both directions run at
//!   hundreds of MB/s — the regime the paper's feasibility condition
//!   `T_comp + T_comp_xmit + T_decomp < T_uncomp_xmit` assumes.
//!
//! ## Stream format
//!
//! A sequence of tokens. The control byte `c` encodes:
//!
//! * `c < 0x20`: a literal run of `c + 1` bytes follows (1..=32 literals);
//! * otherwise a back-reference: `len3 = c >> 5` (1..=7). If `len3 == 7` an
//!   extension byte `e` follows and the match length is `9 + e`, else it is
//!   `len3 + 2`. The offset is `((c & 0x1F) << 8 | low) + 1` where `low` is
//!   the byte after the (optional) extension byte; offsets are 1..=8192.

/// Offsets must fit in 13 bits.
const MAX_OFF: usize = 1 << 13;
/// Maximum encodable match length (7 ⇒ extension byte, 9 + 255).
const MAX_LEN: usize = 264;
/// Minimum profitable match length.
const MIN_LEN: usize = 3;
/// Maximum literal-run length per token.
const MAX_LIT: usize = 32;

const HASH_BITS: u32 = 14;

#[inline]
fn hash3(b: &[u8]) -> usize {
    let v = (b[0] as u32) | ((b[1] as u32) << 8) | ((b[2] as u32) << 16);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

/// Compress `src`, appending to `dst`. Output for incompressible input is at
/// most `src.len() + src.len()/32 + 1` bytes.
pub fn compress(src: &[u8], dst: &mut Vec<u8>) {
    dst.reserve(src.len() / 2 + 16);
    let n = src.len();
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut i = 0usize;
    let mut lit_start = 0usize;

    #[inline]
    fn flush_literals(src: &[u8], dst: &mut Vec<u8>, from: usize, to: usize) {
        let mut s = from;
        while s < to {
            let run = (to - s).min(MAX_LIT);
            dst.push((run - 1) as u8);
            dst.extend_from_slice(&src[s..s + run]);
            s += run;
        }
    }

    while i + MIN_LEN <= n {
        let h = hash3(&src[i..]);
        let cand = table[h];
        table[h] = i;
        let mut matched = 0usize;
        if cand != usize::MAX && i - cand <= MAX_OFF && src[cand..cand + 3] == src[i..i + 3] {
            let limit = (n - i).min(MAX_LEN);
            let mut l = 3;
            while l < limit && src[cand + l] == src[i + l] {
                l += 1;
            }
            matched = l;
        }
        if matched >= MIN_LEN {
            flush_literals(src, dst, lit_start, i);
            let off = i - cand - 1; // 0-based on the wire
            if matched <= 8 {
                dst.push((((matched - 2) as u8) << 5) | ((off >> 8) as u8));
            } else {
                dst.push((7u8 << 5) | ((off >> 8) as u8));
                dst.push((matched - 9) as u8);
            }
            dst.push((off & 0xFF) as u8);
            // Seed the hash table inside the match so later data can refer
            // back into it (cheap: every other position).
            let end = i + matched;
            let mut j = i + 1;
            while j + MIN_LEN <= n && j < end {
                table[hash3(&src[j..])] = j;
                j += 2;
            }
            i = end;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(src, dst, lit_start, n);
}

/// Error returned when a compressed stream is malformed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Corrupt;

impl std::fmt::Display for Corrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt compressed stream")
    }
}
impl std::error::Error for Corrupt {}

/// Decompress `src`, appending to `dst`. Never panics on malformed input.
pub fn decompress(src: &[u8], dst: &mut Vec<u8>) -> Result<(), Corrupt> {
    let base = dst.len();
    let mut i = 0usize;
    while i < src.len() {
        let c = src[i];
        i += 1;
        if c < 0x20 {
            let run = c as usize + 1;
            if i + run > src.len() {
                return Err(Corrupt);
            }
            dst.extend_from_slice(&src[i..i + run]);
            i += run;
        } else {
            let len3 = (c >> 5) as usize;
            let len = if len3 == 7 {
                let e = *src.get(i).ok_or(Corrupt)? as usize;
                i += 1;
                9 + e
            } else {
                len3 + 2
            };
            let low = *src.get(i).ok_or(Corrupt)? as usize;
            i += 1;
            let off = (((c & 0x1F) as usize) << 8 | low) + 1;
            let produced = dst.len() - base;
            if off > produced {
                return Err(Corrupt);
            }
            let from = dst.len() - off;
            // Overlapping copies are the point (e.g. RLE-like matches).
            for i in from..from + len {
                let b = dst[i];
                dst.push(b);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let mut c = Vec::new();
        compress(data, &mut c);
        let mut d = Vec::new();
        decompress(&c, &mut d).expect("decompress");
        d
    }

    #[test]
    fn empty_roundtrip() {
        assert_eq!(roundtrip(b""), b"");
    }

    #[test]
    fn short_inputs_roundtrip() {
        for n in 0..20 {
            let data: Vec<u8> = (0..n).map(|i| i as u8).collect();
            assert_eq!(roundtrip(&data), data, "n={n}");
        }
    }

    #[test]
    fn repetitive_input_compresses_hard() {
        let data = vec![b'A'; 100_000];
        let mut c = Vec::new();
        compress(&data, &mut c);
        assert!(
            c.len() < data.len() / 50,
            "only {} -> {}",
            data.len(),
            c.len()
        );
        let mut d = Vec::new();
        decompress(&c, &mut d).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn dna_like_text_compresses_meaningfully() {
        // 4-letter alphabet with repeated motifs, like EST data.
        let motif = b"ACGTGGCTAACGGATTACAGCTT";
        let mut data = Vec::new();
        let mut x: u64 = 12345;
        while data.len() < 200_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if x.is_multiple_of(3) {
                data.extend_from_slice(motif);
            } else {
                for k in 0..16 {
                    data.push(b"ACGT"[((x >> (k * 2)) & 3) as usize]);
                }
            }
        }
        let mut c = Vec::new();
        compress(&data, &mut c);
        let ratio = c.len() as f64 / data.len() as f64;
        assert!(ratio < 0.8, "ratio {ratio}");
        let mut d = Vec::new();
        decompress(&c, &mut d).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn incompressible_input_expands_boundedly() {
        let mut x: u64 = 99;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xFF) as u8
            })
            .collect();
        let mut c = Vec::new();
        compress(&data, &mut c);
        assert!(c.len() <= data.len() + data.len() / 32 + 1);
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn long_matches_use_extension_byte() {
        let mut data = b"0123456789abcdef".repeat(40); // 640 bytes, long matches
        data.extend_from_slice(b"tail");
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn offsets_beyond_window_are_not_used() {
        // A motif, 10 KiB of noise (> 8 KiB window), then the motif again:
        // the second copy cannot reference the first; output must still
        // round-trip.
        let mut data = b"THE-QUICK-BROWN-FOX".to_vec();
        let mut x: u64 = 7;
        for _ in 0..10_240 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            data.push((x >> 32) as u8);
        }
        data.extend_from_slice(b"THE-QUICK-BROWN-FOX");
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn truncated_stream_is_an_error_not_a_panic() {
        let data = b"AAAAAAAAAABBBBBBBBBBAAAAAAAAAA".repeat(10);
        let mut c = Vec::new();
        compress(&data, &mut c);
        for cut in 0..c.len() {
            let mut d = Vec::new();
            let _ = decompress(&c[..cut], &mut d); // must not panic
        }
    }

    #[test]
    fn garbage_streams_never_panic() {
        let mut x: u64 = 3;
        for trial in 0..200 {
            let len = (trial % 64) + 1;
            let garbage: Vec<u8> = (0..len)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x & 0xFF) as u8
                })
                .collect();
            let mut d = Vec::new();
            let _ = decompress(&garbage, &mut d);
        }
    }

    #[test]
    fn decompress_appends_after_existing_prefix() {
        let mut c = Vec::new();
        compress(b"hello world hello world", &mut c);
        let mut d = b"prefix:".to_vec();
        decompress(&c, &mut d).unwrap();
        assert_eq!(d, b"prefix:hello world hello world");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
                prop_assert_eq!(roundtrip(&data), data);
            }

            #[test]
            fn roundtrip_low_entropy(
                seed in proptest::collection::vec(0u8..4, 1..64),
                reps in 1usize..200,
            ) {
                let alphabet = b"ACGT";
                let unit: Vec<u8> = seed.iter().map(|&s| alphabet[s as usize]).collect();
                let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
                prop_assert_eq!(roundtrip(&data), data);
            }

            #[test]
            fn arbitrary_bytes_never_panic_decoder(
                garbage in proptest::collection::vec(any::<u8>(), 0..512)
            ) {
                let mut d = Vec::new();
                let _ = decompress(&garbage, &mut d);
            }
        }
    }
}
