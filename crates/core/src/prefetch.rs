//! Sequential read-ahead — read-side pipelining over the asynchronous
//! primitives.
//!
//! The paper's visualization motivation (§1: "visualization tools tend to
//! read large amounts of data periodically for subsequent computation")
//! is a sequential-consumer pattern. [`Prefetcher`] keeps a window of
//! `depth` asynchronous reads in flight ahead of the consumer, so on a
//! high-RTT path the per-block round trips and the consumer's processing
//! hide behind the transfers — the read-side mirror of the §7.3 write
//! pipeline.

use std::collections::VecDeque;
use std::sync::Arc;

use semplar_srb::{IoMeter, Payload};

use crate::adio::IoResult;
use crate::file::File;
use crate::request::Request;

/// How many blocks the prefetcher keeps in flight.
enum Window {
    /// A fixed depth chosen by the caller.
    Fixed(usize),
    /// Sized from the stream's measured goodput: enough blocks to cover
    /// twice the bandwidth–delay product, re-evaluated before each refill,
    /// clamped to `[1, max]`. Starts at 1 until telemetry arrives.
    Auto {
        max: usize,
        meter: Option<Arc<IoMeter>>,
    },
}

/// A streaming reader with asynchronous read-ahead.
pub struct Prefetcher<'a> {
    file: &'a File,
    block: u64,
    window: Window,
    next_issue: u64,
    inflight: VecDeque<(u64, Request)>,
    finished: bool,
}

impl<'a> Prefetcher<'a> {
    /// Read `file` sequentially from `offset` in `block`-byte requests,
    /// keeping `depth` of them in flight.
    pub fn new(file: &'a File, offset: u64, block: u64, depth: usize) -> Prefetcher<'a> {
        assert!(block > 0 && depth > 0);
        Prefetcher {
            file,
            block,
            window: Window::Fixed(depth),
            next_issue: offset,
            inflight: VecDeque::new(),
            finished: false,
        }
    }

    /// Like [`new`](Self::new), but the window sizes itself from the
    /// backend's goodput telemetry instead of a fixed depth: deep enough to
    /// cover 2× the measured bandwidth–delay product (the classic pipe-full
    /// condition with headroom for estimate noise), never more than `max`.
    /// On backends without a meter (e.g. [`MemFs`](crate::MemFs), where I/O
    /// is immediate anyway) the window stays at one block.
    pub fn auto(file: &'a File, offset: u64, block: u64, max: usize) -> Prefetcher<'a> {
        assert!(block > 0 && max > 0);
        Prefetcher {
            file,
            block,
            window: Window::Auto {
                max,
                meter: file.meter_handle().cloned(),
            },
            next_issue: offset,
            inflight: VecDeque::new(),
            finished: false,
        }
    }

    /// The depth the window is currently targeting.
    pub fn window_depth(&self) -> usize {
        match &self.window {
            Window::Fixed(d) => *d,
            Window::Auto { max, meter } => {
                let Some(snap) = meter.as_ref().map(|m| m.snapshot()) else {
                    return 1;
                };
                if snap.goodput_bps <= 0.0 || snap.latency_s <= 0.0 {
                    return 1;
                }
                let blocks = (2.0 * snap.goodput_bps * snap.latency_s / self.block as f64).ceil();
                (blocks as usize).clamp(1, *max)
            }
        }
    }

    fn fill(&mut self) {
        let depth = self.window_depth();
        while !self.finished && self.inflight.len() < depth {
            let off = self.next_issue;
            self.inflight
                .push_back((off, self.file.iread_at(off, self.block)));
            self.next_issue += self.block;
        }
    }

    /// The next block: `Ok(Some((offset, data)))`, or `Ok(None)` at EOF.
    /// Short blocks are returned as-is and end the stream.
    pub fn next_block(&mut self) -> IoResult<Option<(u64, Payload)>> {
        if self.finished && self.inflight.is_empty() {
            return Ok(None);
        }
        self.fill();
        let Some((off, req)) = self.inflight.pop_front() else {
            return Ok(None);
        };
        let status = match req.wait() {
            Ok(s) => Some(s),
            // A transient failure (link flap, server crash) must not
            // abandon the window: re-issue the block synchronously, which
            // routes it through the backend's retry-policy recovery. The
            // speculative reads behind it recover the same way when waited.
            Err(e) if e.is_transient() => None,
            Err(e) => return Err(e),
        };
        let data = match status {
            Some(s) => s.data.unwrap_or(Payload::sized(s.bytes)),
            None => self.file.read_at(off, self.block)?,
        };
        if data.len() < self.block {
            // EOF inside this block: drop the speculative reads behind it.
            self.finished = true;
            self.inflight.clear();
        }
        if data.is_empty() {
            return Ok(None);
        }
        // Keep the window full for the next call.
        self.fill();
        Ok(Some((off, data)))
    }

    /// Drain the whole stream into one buffer (requires real data).
    pub fn read_to_end(mut self) -> IoResult<Vec<u8>> {
        let mut out = Vec::new();
        while let Some((_, block)) = self.next_block()? {
            out.extend_from_slice(
                block
                    .data()
                    .ok_or(crate::adio::IoError::BadAccess("size-only payload"))?,
            );
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adio::MemFs;
    use semplar_netsim::{Bw, Network};
    use semplar_runtime::{simulate, Dur};
    use semplar_srb::{ConnRoute, OpenFlags, SrbServer, SrbServerCfg};

    #[test]
    fn streams_whole_file_in_order() {
        simulate(|rt| {
            let fs = MemFs::new(rt.clone());
            let data: Vec<u8> = (0..250_000u32).map(|i| (i % 239) as u8).collect();
            fs.put("/seq", data.clone());
            let f = File::open(&rt, &fs, "/seq", OpenFlags::Read).unwrap();
            let got = Prefetcher::new(&f, 0, 64 * 1024, 3).read_to_end().unwrap();
            assert_eq!(got, data);
            f.close().unwrap();
        });
    }

    #[test]
    fn blocks_arrive_with_correct_offsets() {
        simulate(|rt| {
            let fs = MemFs::new(rt.clone());
            fs.put("/b", vec![7u8; 10_000]);
            let f = File::open(&rt, &fs, "/b", OpenFlags::Read).unwrap();
            let mut pf = Prefetcher::new(&f, 0, 4096, 2);
            let mut offs = Vec::new();
            while let Some((off, block)) = pf.next_block().unwrap() {
                offs.push((off, block.len()));
            }
            assert_eq!(offs, vec![(0, 4096), (4096, 4096), (8192, 10_000 - 8192)]);
            f.close().unwrap();
        });
    }

    #[test]
    fn empty_file_yields_nothing() {
        simulate(|rt| {
            let fs = MemFs::new(rt.clone());
            fs.put("/e", Vec::new());
            let f = File::open(&rt, &fs, "/e", OpenFlags::Read).unwrap();
            assert!(Prefetcher::new(&f, 0, 1024, 2)
                .next_block()
                .unwrap()
                .is_none());
            f.close().unwrap();
        });
    }

    /// A transient cut mid-stream must not abandon the read-ahead window:
    /// blocks whose speculative read died are re-issued through the
    /// backend's recovery instead of surfacing the error to the consumer.
    #[test]
    fn window_survives_a_server_crash_via_retry_fallback() {
        simulate(|rt| {
            let net = Network::new(rt.clone());
            let up = net.add_link("up", Bw::mbps(100.0), Dur::from_millis(5));
            let down = net.add_link("down", Bw::mbps(100.0), Dur::from_millis(5));
            let server = SrbServer::new(net, SrbServerCfg::default());
            server.mcat().add_user("u", "p");
            // RetryPolicy::none: the engine-side read gets a single
            // attempt, so while the server is down its error reaches the
            // prefetcher — exercising the window's fallback path.
            let fs = crate::srbfs::SrbFs::with_retry(
                server.clone(),
                crate::srbfs::SrbFsConfig {
                    route: ConnRoute {
                        fwd: vec![up],
                        rev: vec![down],
                        send_cap: None,
                        recv_cap: None,
                        bus: None,
                    },
                    user: "u".into(),
                    password: "p".into(),
                },
                semplar_srb::RetryPolicy::none(),
            );
            let data: Vec<u8> = (0..400_000u32).map(|i| (i % 233) as u8).collect();
            let f = File::open(&rt, &fs, "/crashy", OpenFlags::CreateRw).unwrap();
            f.write_at(0, &Payload::bytes(data.clone())).unwrap();
            f.close().unwrap();

            let f = File::open(&rt, &fs, "/crashy", OpenFlags::Read).unwrap();
            let s2 = server.clone();
            let rt2 = rt.clone();
            let chaos = semplar_runtime::spawn(&rt, "chaos", move || {
                // Cut every stream while the window is in flight, then come
                // back before the consumer reaches the dead blocks.
                rt2.sleep(Dur::from_millis(30));
                s2.crash();
                rt2.sleep(Dur::from_millis(5));
                s2.restart();
            });
            let mut pf = Prefetcher::new(&f, 0, 64 * 1024, 4);
            let mut got = Vec::new();
            while let Some((_, block)) = pf.next_block().unwrap() {
                got.extend_from_slice(block.data().unwrap());
                rt.sleep(Dur::from_millis(50)); // consumer processing
            }
            chaos.join_unwrap();
            assert_eq!(got, data, "stream must be complete and in order");
            let st = fs.recovery_stats();
            assert!(st.disconnects >= 1, "the crash must have been observed");
            assert!(st.reconnects >= 1, "fallback must have redialed");
            f.close().unwrap();
        });
    }

    /// Without telemetry (MemFs) the auto window stays at one block and the
    /// stream still arrives complete and in order.
    #[test]
    fn auto_window_without_meter_stays_minimal() {
        simulate(|rt| {
            let fs = MemFs::new(rt.clone());
            let data: Vec<u8> = (0..100_000u32).map(|i| (i % 241) as u8).collect();
            fs.put("/auto", data.clone());
            let f = File::open(&rt, &fs, "/auto", OpenFlags::Read).unwrap();
            let mut pf = Prefetcher::auto(&f, 0, 16 * 1024, 8);
            assert_eq!(pf.window_depth(), 1);
            let mut got = Vec::new();
            while let Some((_, b)) = pf.next_block().unwrap() {
                got.extend_from_slice(b.data().unwrap());
            }
            assert_eq!(pf.window_depth(), 1);
            assert_eq!(got, data);
            f.close().unwrap();
        });
    }

    /// On a measured remote stream the auto window opens to cover the
    /// bandwidth–delay product — deep enough to hide the consumer's
    /// processing behind the transfers, like a hand-tuned fixed depth.
    #[test]
    fn auto_window_sizes_from_goodput() {
        let (na, ra, depth) = simulate(|rt| {
            let net = Network::new(rt.clone());
            let up = net.add_link("up", Bw::mbps(100.0), Dur::from_millis(40));
            let down = net.add_link("down", Bw::mbps(100.0), Dur::from_millis(40));
            let server = SrbServer::new(net, SrbServerCfg::default());
            server.mcat().add_user("u", "p");
            let fs = crate::srbfs::SrbFs::new(
                server,
                crate::srbfs::SrbFsConfig {
                    route: ConnRoute {
                        fwd: vec![up],
                        rev: vec![down],
                        send_cap: None,
                        recv_cap: None,
                        bus: None,
                    },
                    user: "u".into(),
                    password: "p".into(),
                },
            );
            let f = File::open(&rt, &fs, "/viz", OpenFlags::CreateRw).unwrap();
            f.write_at(0, &Payload::sized(2 << 20)).unwrap();
            f.close().unwrap();

            let consume = Dur::from_millis(60);

            let f = File::open(&rt, &fs, "/viz", OpenFlags::Read).unwrap();
            let t0 = rt.now();
            let mut off = 0u64;
            loop {
                let b = f.read_at(off, 256 * 1024).unwrap();
                if b.is_empty() {
                    break;
                }
                off += b.len();
                rt.sleep(consume);
            }
            let na = (rt.now() - t0).as_secs_f64();
            f.close().unwrap();

            let f = File::open(&rt, &fs, "/viz", OpenFlags::Read).unwrap();
            let t0 = rt.now();
            let mut pf = Prefetcher::auto(&f, 0, 256 * 1024, 8);
            assert_eq!(pf.window_depth(), 1, "no telemetry before the first block");
            while pf.next_block().unwrap().is_some() {
                rt.sleep(consume);
            }
            let depth = pf.window_depth();
            let ra = (rt.now() - t0).as_secs_f64();
            f.close().unwrap();
            (na, ra, depth)
        });
        assert!(depth > 1, "window never opened: depth {depth}");
        assert!(
            ra < na * 0.8,
            "auto read-ahead {ra:.2}s should beat no-read-ahead {na:.2}s"
        );
    }

    /// The point of read-ahead: on a high-RTT path, a consumer that
    /// processes each block pays ~max(process, fetch) per block instead of
    /// their sum.
    #[test]
    fn read_ahead_hides_round_trips_behind_consumption() {
        let (na, ra) = simulate(|rt| {
            let net = Network::new(rt.clone());
            let up = net.add_link("up", Bw::mbps(100.0), Dur::from_millis(40));
            let down = net.add_link("down", Bw::mbps(100.0), Dur::from_millis(40));
            let server = SrbServer::new(net, SrbServerCfg::default());
            server.mcat().add_user("u", "p");
            let fs = crate::srbfs::SrbFs::new(
                server,
                crate::srbfs::SrbFsConfig {
                    route: ConnRoute {
                        fwd: vec![up],
                        rev: vec![down],
                        send_cap: None,
                        recv_cap: None,
                        bus: None,
                    },
                    user: "u".into(),
                    password: "p".into(),
                },
            );
            // Populate a 2 MB remote file.
            let f = File::open(&rt, &fs, "/viz", OpenFlags::CreateRw).unwrap();
            f.write_at(0, &Payload::sized(2 << 20)).unwrap();
            f.close().unwrap();

            let consume = Dur::from_millis(60); // per-block processing

            // No read-ahead: synchronous fetch, process, fetch, ...
            let f = File::open(&rt, &fs, "/viz", OpenFlags::Read).unwrap();
            let t0 = rt.now();
            let mut off = 0u64;
            loop {
                let b = f.read_at(off, 256 * 1024).unwrap();
                if b.is_empty() {
                    break;
                }
                off += b.len();
                rt.sleep(consume);
            }
            let na = (rt.now() - t0).as_secs_f64();
            f.close().unwrap();

            // Depth-4 read-ahead: fetches hide behind processing.
            let f = File::open(&rt, &fs, "/viz", OpenFlags::Read).unwrap();
            let t0 = rt.now();
            let mut pf = Prefetcher::new(&f, 0, 256 * 1024, 4);
            while pf.next_block().unwrap().is_some() {
                rt.sleep(consume);
            }
            let ra = (rt.now() - t0).as_secs_f64();
            f.close().unwrap();
            (na, ra)
        });
        assert!(
            ra < na * 0.75,
            "read-ahead {ra:.2}s should beat no-read-ahead {na:.2}s"
        );
    }
}
